// Typed columns for the embedded column store (the MonetDBLite role in the
// paper's architecture: all data, indexes and metadata live in relational
// tables).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace spade {

enum class ColumnType : uint8_t { kInt64 = 0, kDouble = 1, kText = 2 };

inline const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt64: return "INT";
    case ColumnType::kDouble: return "DOUBLE";
    case ColumnType::kText: return "TEXT";
  }
  return "?";
}

/// A single cell value.
using Value = std::variant<int64_t, double, std::string>;

inline ColumnType TypeOf(const Value& v) {
  return static_cast<ColumnType>(v.index());
}

inline std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0: return std::to_string(std::get<int64_t>(v));
    case 1: return std::to_string(std::get<double>(v));
    default: return std::get<std::string>(v);
  }
}

/// \brief A typed column: one of three value vectors is populated.
class Column {
 public:
  explicit Column(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }
  size_t size() const {
    switch (type_) {
      case ColumnType::kInt64: return ints_.size();
      case ColumnType::kDouble: return doubles_.size();
      case ColumnType::kText: return texts_.size();
    }
    return 0;
  }

  Status Append(const Value& v) {
    if (TypeOf(v) != type_) {
      // Allow int -> double widening, the only implicit conversion.
      if (type_ == ColumnType::kDouble && TypeOf(v) == ColumnType::kInt64) {
        doubles_.push_back(static_cast<double>(std::get<int64_t>(v)));
        return Status::OK();
      }
      return Status::InvalidArgument("type mismatch appending to column");
    }
    switch (type_) {
      case ColumnType::kInt64: ints_.push_back(std::get<int64_t>(v)); break;
      case ColumnType::kDouble: doubles_.push_back(std::get<double>(v)); break;
      case ColumnType::kText: texts_.push_back(std::get<std::string>(v)); break;
    }
    return Status::OK();
  }

  Value Get(size_t row) const {
    switch (type_) {
      case ColumnType::kInt64: return ints_[row];
      case ColumnType::kDouble: return doubles_[row];
      case ColumnType::kText: return texts_[row];
    }
    return int64_t{0};
  }

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& texts() const { return texts_; }

 private:
  ColumnType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> texts_;
};

}  // namespace spade
