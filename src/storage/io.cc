#include "storage/io.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "geom/wkt.h"

namespace spade {

namespace {

/// Split a line on `delim`, returning string views into `fields`.
void SplitLine(const std::string& line, char delim,
               std::vector<std::string>* fields) {
  fields->clear();
  size_t start = 0;
  for (;;) {
    const size_t pos = line.find(delim, start);
    if (pos == std::string::npos) {
      fields->push_back(line.substr(start));
      return;
    }
    fields->push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  // Allow trailing whitespace (e.g. CR from CRLF files).
  while (end != nullptr && (*end == ' ' || *end == '\r' || *end == '\t')) {
    ++end;
  }
  return end != nullptr && *end == '\0' && end != s.c_str();
}

}  // namespace

bool ParseCsvPointLine(const std::string& line, const CsvLoadOptions& options,
                       Vec2* out) {
  std::vector<std::string> fields;
  SplitLine(line, options.delim, &fields);
  const int needed = std::max(options.x_col, options.y_col) + 1;
  double x, y;
  if (static_cast<int>(fields.size()) < needed ||
      !ParseDouble(fields[options.x_col], &x) ||
      !ParseDouble(fields[options.y_col], &y)) {
    return false;
  }
  *out = Vec2{x, y};
  return true;
}

Result<SpatialDataset> LoadPointsCsv(const std::string& path,
                                     const std::string& name,
                                     const CsvLoadOptions& options) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  SpatialDataset ds;
  ds.name = name;
  std::string line;
  bool first = true;
  size_t skipped = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Vec2 p;
    if (!ParseCsvPointLine(line, options, &p)) {
      // A non-numeric first line is a header; later bad lines are counted.
      if (!first) ++skipped;
      first = false;
      continue;
    }
    first = false;
    ds.geoms.emplace_back(p);
    if (options.max_rows != 0 && ds.geoms.size() >= options.max_rows) break;
  }
  if (options.skipped_rows != nullptr) *options.skipped_rows = skipped;
  if (skipped > options.max_skipped_rows) {
    return Status::InvalidArgument(
        path + ": " + std::to_string(skipped) +
        " malformed rows exceed max_skipped_rows=" +
        std::to_string(options.max_skipped_rows));
  }
  if (ds.geoms.empty()) {
    return Status::InvalidArgument("no valid points in " + path);
  }
  return ds;
}

Status SavePointsCsv(const SpatialDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  out.precision(17);
  for (const auto& g : dataset.geoms) {
    if (!g.is_point()) {
      return Status::InvalidArgument("SavePointsCsv needs point data");
    }
    out << g.point().x << ',' << g.point().y << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<SpatialDataset> LoadWktFile(const std::string& path,
                                   const std::string& name, size_t max_rows) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  SpatialDataset ds;
  ds.name = name;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Trim whitespace / CR.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    auto g = ParseWkt(line);
    if (!g.ok()) {
      return Status::InvalidArgument("bad WKT at " + path + ":" +
                                     std::to_string(lineno) + ": " +
                                     g.status().message());
    }
    ds.geoms.push_back(std::move(g).value());
    if (max_rows != 0 && ds.geoms.size() >= max_rows) break;
  }
  return ds;
}

Status SaveWktFile(const SpatialDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::IOError("cannot open " + path);
  out.precision(17);
  for (const auto& g : dataset.geoms) {
    out << ToWkt(g) << '\n';
  }
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace spade
