// The embedded relational store's catalog: a named collection of tables
// with directory-based persistence. Plays the role MonetDBLite plays in
// the paper — SPADE stores data, indexes, and metadata relationally, which
// is what makes it easy to integrate with existing RDBMSs.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace spade {

/// \brief Named table registry with directory persistence.
class Catalog {
 public:
  Status CreateTable(const std::string& name,
                     std::vector<std::string> column_names,
                     std::vector<ColumnType> column_types);

  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;

  /// Persist every table into `dir` (one file per table).
  Status SaveToDir(const std::string& dir) const;

  /// Load every table file found in `dir`.
  Status LoadFromDir(const std::string& dir);

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace spade
