#include "storage/block.h"

#include <cstring>

#include "common/crc32c.h"
#include "common/failpoint.h"

namespace spade {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU8(std::string* out, uint8_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutVec2s(std::string* out, const std::vector<Vec2>& pts) {
  PutU32(out, static_cast<uint32_t>(pts.size()));
  out->append(reinterpret_cast<const char*>(pts.data()),
              pts.size() * sizeof(Vec2));
}

class BlockReader {
 public:
  BlockReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool U32(uint32_t* v) {
    if (pos_ + sizeof(uint32_t) > size_) return false;
    std::memcpy(v, data_ + pos_, sizeof(uint32_t));
    pos_ += sizeof(uint32_t);
    return true;
  }
  bool U8(uint8_t* v) {
    if (pos_ + 1 > size_) return false;
    *v = data_[pos_++];
    return true;
  }
  bool One(Vec2* p) {
    if (pos_ + sizeof(Vec2) > size_) return false;
    std::memcpy(p, data_ + pos_, sizeof(Vec2));
    pos_ += sizeof(Vec2);
    return true;
  }
  bool Vec2s(std::vector<Vec2>* pts) {
    uint32_t n;
    if (!U32(&n)) return false;
    if (pos_ + n * sizeof(Vec2) > size_) return false;
    pts->resize(n);
    std::memcpy(pts->data(), data_ + pos_, n * sizeof(Vec2));
    pos_ += n * sizeof(Vec2);
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

std::string SerializeBlock(const std::vector<GeomId>& ids,
                           const std::vector<Geometry>& geoms) {
  std::string out;
  PutU32(&out, kBlockMagicV2);
  PutU32(&out, 0);  // checksum placeholder, patched after the payload
  PutU32(&out, static_cast<uint32_t>(geoms.size()));
  for (size_t i = 0; i < geoms.size(); ++i) {
    PutU32(&out, ids[i]);
    const Geometry& g = geoms[i];
    PutU8(&out, static_cast<uint8_t>(g.type()));
    switch (g.type()) {
      case GeomType::kPoint: {
        const Vec2& p = g.point();
        out.append(reinterpret_cast<const char*>(&p), sizeof(Vec2));
        break;
      }
      case GeomType::kLine:
        PutVec2s(&out, g.line().points);
        break;
      case GeomType::kPolygon: {
        const auto& mp = g.polygon();
        PutU32(&out, static_cast<uint32_t>(mp.parts.size()));
        for (const auto& part : mp.parts) {
          PutVec2s(&out, part.outer);
          PutU32(&out, static_cast<uint32_t>(part.holes.size()));
          for (const auto& h : part.holes) PutVec2s(&out, h);
        }
        break;
      }
    }
  }
  const uint32_t crc = Crc32c(out.data() + 8, out.size() - 8);
  std::memcpy(out.data() + 4, &crc, sizeof(crc));
  return out;
}

Status DeserializeBlock(const uint8_t* data, size_t size,
                        std::vector<GeomId>* ids,
                        std::vector<Geometry>* geoms,
                        BlockReadInfo* info) {
  SPADE_FAILPOINT("block.deserialize");
  uint32_t head = 0;
  if (size >= sizeof(head)) std::memcpy(&head, data, sizeof(head));
  if (head == kBlockMagicV2) {
    if (size < 8) return Status::IOError("v2 block truncated (header)");
    uint32_t stored_crc;
    std::memcpy(&stored_crc, data + 4, sizeof(stored_crc));
    const uint32_t actual_crc = Crc32c(data + 8, size - 8);
    if (stored_crc != actual_crc) {
      if (info != nullptr) {
        info->version = 2;
        info->checksum_failed = true;
      }
      return Status::IOError("block checksum mismatch: stored " +
                             std::to_string(stored_crc) + ", computed " +
                             std::to_string(actual_crc));
    }
    if (info != nullptr) info->version = 2;
    data += 8;
    size -= 8;
  } else if (info != nullptr) {
    info->version = 1;
  }
  BlockReader rd(data, size);
  uint32_t count;
  if (!rd.U32(&count)) return Status::IOError("block truncated (count)");
  ids->clear();
  geoms->clear();
  ids->reserve(count);
  geoms->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id;
    uint8_t type;
    if (!rd.U32(&id) || !rd.U8(&type)) {
      return Status::IOError("block truncated (header)");
    }
    ids->push_back(id);
    switch (static_cast<GeomType>(type)) {
      case GeomType::kPoint: {
        Vec2 p;
        if (!rd.One(&p)) return Status::IOError("block truncated (point)");
        geoms->emplace_back(p);
        break;
      }
      case GeomType::kLine: {
        LineString l;
        if (!rd.Vec2s(&l.points)) return Status::IOError("block truncated");
        geoms->emplace_back(std::move(l));
        break;
      }
      case GeomType::kPolygon: {
        uint32_t nparts;
        if (!rd.U32(&nparts)) return Status::IOError("block truncated");
        MultiPolygon mp;
        mp.parts.resize(nparts);
        for (auto& part : mp.parts) {
          if (!rd.Vec2s(&part.outer)) return Status::IOError("block truncated");
          uint32_t nholes;
          if (!rd.U32(&nholes)) return Status::IOError("block truncated");
          part.holes.resize(nholes);
          for (auto& h : part.holes) {
            if (!rd.Vec2s(&h)) return Status::IOError("block truncated");
          }
        }
        geoms->emplace_back(std::move(mp));
        break;
      }
      default:
        return Status::IOError("bad geometry type in block");
    }
  }
  return Status::OK();
}

}  // namespace spade
