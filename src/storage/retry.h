// Bounded exponential-backoff retry for transient storage errors,
// used by DiskSource reads (and available to any fallible I/O call).
#pragma once

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace spade {

/// \brief Retry policy: bounded attempts with jittered geometric backoff.
///
/// Only kIOError outcomes are retried by default (other codes are
/// deterministic); delays grow geometrically from `base_delay_ms`, capped
/// at `max_delay_ms`, with a deterministic jitter fraction so concurrent
/// readers do not retry in lockstep. The sleep itself is injectable so
/// tests run instantly and can record the schedule.
struct RetryPolicy {
  int max_attempts = 3;        ///< total attempts, including the first
  double base_delay_ms = 1.0;  ///< delay before the first retry
  double multiplier = 2.0;     ///< geometric backoff factor
  double max_delay_ms = 100.0; ///< backoff cap
  double jitter = 0.25;        ///< fraction of each delay randomized
  uint64_t jitter_seed = 0x9E3779B97F4A7C15ull;  ///< jitter RNG stream

  /// Injectable clock: invoked with each backoff delay in milliseconds.
  /// Defaults to a real sleep when unset.
  std::function<void(double)> sleep_ms;

  /// Which failures to retry. Defaults (unset) to kIOError only; callers
  /// narrow it further for errors that are known to be permanent (e.g. a
  /// checksum mismatch, which would re-read the same corrupt bytes).
  std::function<bool(const Status&)> retryable;

  /// Delay before retry number `retry` (0-based), jittered via *rng_state.
  double DelayMs(int retry, uint64_t* rng_state) const;
};

/// Run `op` under `policy`. Returns the first non-retryable status (OK or
/// a deterministic error) or the last error once attempts are exhausted.
/// `retries_out`, when given, accumulates the number of extra attempts.
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& op, int64_t* retries_out);

}  // namespace spade
