#include "storage/geo_table.h"

#include "geom/wkt.h"

namespace spade {

Status RegisterDataset(Catalog* catalog, const SpatialDataset& dataset) {
  SPADE_RETURN_NOT_OK(catalog->CreateTable(
      dataset.name, {"id", "wkt"}, {ColumnType::kInt64, ColumnType::kText}));
  SPADE_ASSIGN_OR_RETURN(Table * table, catalog->GetTable(dataset.name));
  for (size_t i = 0; i < dataset.geoms.size(); ++i) {
    SPADE_RETURN_NOT_OK(table->AppendRow(
        {static_cast<int64_t>(i), ToWkt(dataset.geoms[i])}));
  }
  return Status::OK();
}

Result<SpatialDataset> LoadDataset(const Catalog& catalog,
                                   const std::string& name) {
  SPADE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
  const int id_col = table->ColumnIndex("id");
  const int wkt_col = table->ColumnIndex("wkt");
  if (id_col < 0 || wkt_col < 0) {
    return Status::InvalidArgument("table " + name +
                                   " is not a spatial dataset table");
  }
  SpatialDataset ds;
  ds.name = name;
  ds.geoms.resize(table->num_rows());
  for (size_t r = 0; r < table->num_rows(); ++r) {
    const int64_t id = std::get<int64_t>(table->Get(r, id_col));
    if (id < 0 || static_cast<size_t>(id) >= ds.geoms.size()) {
      return Status::InvalidArgument("dataset table has out-of-range id");
    }
    SPADE_ASSIGN_OR_RETURN(
        Geometry g, ParseWkt(std::get<std::string>(table->Get(r, wkt_col))));
    ds.geoms[id] = std::move(g);
  }
  return ds;
}

}  // namespace spade
