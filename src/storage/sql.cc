#include "storage/sql.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace spade {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kWord, kNumber, kString, kSymbol, kEnd };
  Kind kind;
  std::string text;  // uppercased for words
  std::string raw;
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : s_(sql) { Advance(); }

  const Token& cur() const { return cur_; }

  void Advance() {
    SkipSpace();
    if (pos_ >= s_.size()) {
      cur_ = {Token::Kind::kEnd, "", ""};
      return;
    }
    const char c = s_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '*') {
      size_t start = pos_;
      while (pos_ < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '_' || s_[pos_] == '*')) {
        ++pos_;
      }
      std::string raw = s_.substr(start, pos_ - start);
      std::string up = raw;
      for (auto& ch : up) ch = static_cast<char>(std::toupper(ch));
      cur_ = {Token::Kind::kWord, up, raw};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      size_t start = pos_;
      ++pos_;
      while (pos_ < s_.size() &&
             (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
              s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
              ((s_[pos_] == '-' || s_[pos_] == '+') &&
               (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E')))) {
        ++pos_;
      }
      std::string raw = s_.substr(start, pos_ - start);
      cur_ = {Token::Kind::kNumber, raw, raw};
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string text;
      while (pos_ < s_.size() && s_[pos_] != '\'') text += s_[pos_++];
      if (pos_ < s_.size()) ++pos_;  // closing quote
      cur_ = {Token::Kind::kString, text, text};
      return;
    }
    // Multi-char comparison operators.
    if ((c == '<' || c == '>') && pos_ + 1 < s_.size() &&
        (s_[pos_ + 1] == '=' || (c == '<' && s_[pos_ + 1] == '>'))) {
      cur_ = {Token::Kind::kSymbol, s_.substr(pos_, 2), s_.substr(pos_, 2)};
      pos_ += 2;
      return;
    }
    cur_ = {Token::Kind::kSymbol, std::string(1, c), std::string(1, c)};
    ++pos_;
  }

 private:
  void SkipSpace() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
  Token cur_;
};

// ---------------------------------------------------------------------------
// Parser / executor
// ---------------------------------------------------------------------------

struct Predicate {
  int column;
  std::string op;  // =, <>, <, >, <=, >=
  Value literal;
};

bool CompareValues(const Value& a, const std::string& op, const Value& b) {
  auto as_double = [](const Value& v) -> double {
    if (v.index() == 0) return static_cast<double>(std::get<int64_t>(v));
    if (v.index() == 1) return std::get<double>(v);
    return 0;
  };
  int cmp;
  if (a.index() == 2 || b.index() == 2) {
    if (a.index() != 2 || b.index() != 2) return false;  // string vs number
    cmp = std::get<std::string>(a).compare(std::get<std::string>(b));
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  } else {
    const double da = as_double(a), db = as_double(b);
    cmp = da < db ? -1 : (da > db ? 1 : 0);
  }
  if (op == "=") return cmp == 0;
  if (op == "<>") return cmp != 0;
  if (op == "<") return cmp < 0;
  if (op == ">") return cmp > 0;
  if (op == "<=") return cmp <= 0;
  if (op == ">=") return cmp >= 0;
  return false;
}

class SqlRunner {
 public:
  SqlRunner(Catalog* catalog, const std::string& sql)
      : catalog_(catalog), lex_(sql) {}

  Result<Table> Run() {
    if (Accept("CREATE")) return RunCreate();
    if (Accept("DROP")) return RunDrop();
    if (Accept("INSERT")) return RunInsert();
    if (Accept("SELECT")) return RunSelect();
    return Status::InvalidArgument("unsupported SQL statement");
  }

 private:
  bool Accept(const std::string& word) {
    if (lex_.cur().kind == Token::Kind::kWord && lex_.cur().text == word) {
      lex_.Advance();
      return true;
    }
    return false;
  }

  bool AcceptSymbol(const std::string& sym) {
    if (lex_.cur().kind == Token::Kind::kSymbol && lex_.cur().text == sym) {
      lex_.Advance();
      return true;
    }
    return false;
  }

  Status Expect(const std::string& word) {
    if (!Accept(word)) {
      return Status::InvalidArgument("expected " + word + " near '" +
                                     lex_.cur().raw + "'");
    }
    return Status::OK();
  }

  Status ExpectSymbol(const std::string& sym) {
    if (!AcceptSymbol(sym)) {
      return Status::InvalidArgument("expected '" + sym + "' near '" +
                                     lex_.cur().raw + "'");
    }
    return Status::OK();
  }

  Result<std::string> Identifier() {
    if (lex_.cur().kind != Token::Kind::kWord) {
      return Status::InvalidArgument("expected identifier near '" +
                                     lex_.cur().raw + "'");
    }
    std::string id = lex_.cur().raw;
    lex_.Advance();
    return id;
  }

  Result<Value> Literal() {
    const Token t = lex_.cur();
    if (t.kind == Token::Kind::kNumber) {
      lex_.Advance();
      if (t.raw.find_first_of(".eE") != std::string::npos) {
        return Value(std::strtod(t.raw.c_str(), nullptr));
      }
      return Value(static_cast<int64_t>(std::strtoll(t.raw.c_str(), nullptr, 10)));
    }
    if (t.kind == Token::Kind::kString) {
      lex_.Advance();
      return Value(t.raw);
    }
    return Status::InvalidArgument("expected literal near '" + t.raw + "'");
  }

  Result<Table> RunCreate() {
    SPADE_RETURN_NOT_OK(Expect("TABLE"));
    SPADE_ASSIGN_OR_RETURN(std::string name, Identifier());
    SPADE_RETURN_NOT_OK(ExpectSymbol("("));
    std::vector<std::string> cols;
    std::vector<ColumnType> types;
    for (;;) {
      SPADE_ASSIGN_OR_RETURN(std::string col, Identifier());
      ColumnType type;
      if (Accept("INT") || Accept("INTEGER") || Accept("BIGINT")) {
        type = ColumnType::kInt64;
      } else if (Accept("DOUBLE") || Accept("REAL") || Accept("FLOAT")) {
        type = ColumnType::kDouble;
      } else if (Accept("TEXT") || Accept("VARCHAR") || Accept("STRING")) {
        type = ColumnType::kText;
      } else {
        return Status::InvalidArgument("unknown column type near '" +
                                       lex_.cur().raw + "'");
      }
      cols.push_back(std::move(col));
      types.push_back(type);
      if (AcceptSymbol(",")) continue;
      break;
    }
    SPADE_RETURN_NOT_OK(ExpectSymbol(")"));
    SPADE_RETURN_NOT_OK(catalog_->CreateTable(name, cols, types));
    return Table("ok", {}, {});
  }

  Result<Table> RunDrop() {
    SPADE_RETURN_NOT_OK(Expect("TABLE"));
    SPADE_ASSIGN_OR_RETURN(std::string name, Identifier());
    SPADE_RETURN_NOT_OK(catalog_->DropTable(name));
    return Table("ok", {}, {});
  }

  Result<Table> RunInsert() {
    SPADE_RETURN_NOT_OK(Expect("INTO"));
    SPADE_ASSIGN_OR_RETURN(std::string name, Identifier());
    SPADE_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(name));
    SPADE_RETURN_NOT_OK(Expect("VALUES"));
    for (;;) {
      SPADE_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> row;
      for (;;) {
        SPADE_ASSIGN_OR_RETURN(Value v, Literal());
        row.push_back(std::move(v));
        if (AcceptSymbol(",")) continue;
        break;
      }
      SPADE_RETURN_NOT_OK(ExpectSymbol(")"));
      SPADE_RETURN_NOT_OK(table->AppendRow(row));
      if (AcceptSymbol(",")) continue;
      break;
    }
    return Table("ok", {}, {});
  }

  enum class Agg { kNone, kCount, kSum, kMin, kMax, kAvg };

  static bool IsAggWord(const std::string& up, Agg* agg) {
    if (up == "COUNT") *agg = Agg::kCount;
    else if (up == "SUM") *agg = Agg::kSum;
    else if (up == "MIN") *agg = Agg::kMin;
    else if (up == "MAX") *agg = Agg::kMax;
    else if (up == "AVG") *agg = Agg::kAvg;
    else return false;
    return true;
  }

  struct ProjItem {
    Agg agg = Agg::kNone;
    std::string column;  // empty for COUNT(*)
  };

  Result<Table> RunSelect() {
    // Projection list: *, columns, or aggregate calls.
    bool star = false;
    std::vector<ProjItem> proj;
    bool has_agg = false;
    if (lex_.cur().raw == "*") {
      star = true;
      lex_.Advance();
    } else {
      for (;;) {
        ProjItem item;
        Agg agg;
        if (lex_.cur().kind == Token::Kind::kWord &&
            IsAggWord(lex_.cur().text, &agg)) {
          // Lookahead: an aggregate only if followed by '('.
          const Token saved = lex_.cur();
          lex_.Advance();
          if (AcceptSymbol("(")) {
            item.agg = agg;
            has_agg = true;
            if (lex_.cur().raw == "*") {
              if (agg != Agg::kCount) {
                return Status::InvalidArgument("only COUNT accepts *");
              }
              lex_.Advance();
            } else {
              SPADE_ASSIGN_OR_RETURN(item.column, Identifier());
            }
            SPADE_RETURN_NOT_OK(ExpectSymbol(")"));
          } else {
            item.column = saved.raw;  // it was a plain column name
          }
        } else {
          SPADE_ASSIGN_OR_RETURN(item.column, Identifier());
        }
        proj.push_back(std::move(item));
        if (AcceptSymbol(",")) continue;
        break;
      }
    }
    if (has_agg) {
      for (const auto& item : proj) {
        if (item.agg == Agg::kNone) {
          return Status::NotSupported(
              "mixing aggregates and plain columns (no GROUP BY support)");
        }
      }
    }
    SPADE_RETURN_NOT_OK(Expect("FROM"));
    SPADE_ASSIGN_OR_RETURN(std::string name, Identifier());
    SPADE_ASSIGN_OR_RETURN(Table * table, catalog_->GetTable(name));

    std::vector<Predicate> preds;
    if (Accept("WHERE")) {
      for (;;) {
        SPADE_ASSIGN_OR_RETURN(std::string col, Identifier());
        const int ci = table->ColumnIndex(col);
        if (ci < 0) return Status::NotFound("no column " + col);
        if (lex_.cur().kind != Token::Kind::kSymbol) {
          return Status::InvalidArgument("expected comparison operator");
        }
        std::string op = lex_.cur().text;
        if (op != "=" && op != "<>" && op != "<" && op != ">" && op != "<=" &&
            op != ">=") {
          return Status::InvalidArgument("unknown operator '" + op + "'");
        }
        lex_.Advance();
        SPADE_ASSIGN_OR_RETURN(Value lit, Literal());
        preds.push_back({ci, op, std::move(lit)});
        if (Accept("AND")) continue;
        break;
      }
    }
    // ORDER BY col [ASC|DESC] (single key).
    int order_col = -1;
    bool order_desc = false;
    if (Accept("ORDER")) {
      SPADE_RETURN_NOT_OK(Expect("BY"));
      SPADE_ASSIGN_OR_RETURN(std::string col, Identifier());
      order_col = table->ColumnIndex(col);
      if (order_col < 0) return Status::NotFound("no column " + col);
      if (Accept("DESC")) {
        order_desc = true;
      } else {
        (void)Accept("ASC");
      }
    }
    int64_t limit = -1;
    if (Accept("LIMIT")) {
      SPADE_ASSIGN_OR_RETURN(Value v, Literal());
      if (v.index() != 0) return Status::InvalidArgument("LIMIT must be int");
      limit = std::get<int64_t>(v);
    }

    // Gather matching row indices.
    std::vector<size_t> rows;
    for (size_t r = 0; r < table->num_rows(); ++r) {
      bool pass = true;
      for (const auto& p : preds) {
        if (!CompareValues(table->Get(r, p.column), p.op, p.literal)) {
          pass = false;
          break;
        }
      }
      if (pass) rows.push_back(r);
    }
    if (order_col >= 0) {
      std::stable_sort(rows.begin(), rows.end(), [&](size_t a, size_t b) {
        const bool lt =
            CompareValues(table->Get(a, order_col), "<", table->Get(b, order_col));
        const bool gt =
            CompareValues(table->Get(a, order_col), ">", table->Get(b, order_col));
        return order_desc ? gt : lt;
      });
    }

    if (has_agg) {
      // Aggregate execution: one output row.
      std::vector<std::string> names;
      std::vector<ColumnType> types;
      std::vector<int> agg_cols;
      for (const auto& item : proj) {
        int ci = -1;
        if (!item.column.empty()) {
          ci = table->ColumnIndex(item.column);
          if (ci < 0) return Status::NotFound("no column " + item.column);
          if (item.agg != Agg::kCount &&
              table->column(ci).type() == ColumnType::kText) {
            if (item.agg == Agg::kSum || item.agg == Agg::kAvg) {
              return Status::InvalidArgument("SUM/AVG need a numeric column");
            }
          }
        } else if (item.agg != Agg::kCount) {
          return Status::InvalidArgument("aggregate needs a column");
        }
        agg_cols.push_back(ci);
        switch (item.agg) {
          case Agg::kCount: names.push_back("count"); break;
          case Agg::kSum: names.push_back("sum_" + item.column); break;
          case Agg::kMin: names.push_back("min_" + item.column); break;
          case Agg::kMax: names.push_back("max_" + item.column); break;
          case Agg::kAvg: names.push_back("avg_" + item.column); break;
          case Agg::kNone: break;
        }
        if (item.agg == Agg::kCount) {
          types.push_back(ColumnType::kInt64);
        } else if (item.agg == Agg::kAvg) {
          types.push_back(ColumnType::kDouble);
        } else if (ci >= 0) {
          types.push_back(table->column(ci).type());
        }
      }
      Table out("aggregate", names, types);
      std::vector<Value> row;
      for (size_t k = 0; k < proj.size(); ++k) {
        const auto& item = proj[k];
        const int ci = agg_cols[k];
        if (item.agg == Agg::kCount) {
          row.emplace_back(static_cast<int64_t>(rows.size()));
          continue;
        }
        if (rows.empty()) {
          // Empty input: SUM/AVG -> 0, MIN/MAX -> type default.
          if (types[k] == ColumnType::kInt64) row.emplace_back(int64_t{0});
          else if (types[k] == ColumnType::kDouble) row.emplace_back(0.0);
          else row.emplace_back(std::string());
          continue;
        }
        if (item.agg == Agg::kMin || item.agg == Agg::kMax) {
          Value best = table->Get(rows[0], ci);
          for (size_t r : rows) {
            const Value v = table->Get(r, ci);
            const bool better = CompareValues(
                v, item.agg == Agg::kMin ? "<" : ">", best);
            if (better) best = v;
          }
          row.push_back(best);
        } else {  // SUM / AVG over numeric columns
          double sum = 0;
          bool integral = table->column(ci).type() == ColumnType::kInt64;
          for (size_t r : rows) {
            const Value v = table->Get(r, ci);
            sum += v.index() == 0
                       ? static_cast<double>(std::get<int64_t>(v))
                       : std::get<double>(v);
          }
          if (item.agg == Agg::kAvg) {
            row.emplace_back(sum / rows.size());
          } else if (integral) {
            row.emplace_back(static_cast<int64_t>(sum));
          } else {
            row.emplace_back(sum);
          }
        }
      }
      SPADE_RETURN_NOT_OK(out.AppendRow(row));
      return out;
    }

    // Plain projection.
    std::vector<int> cols;
    std::vector<std::string> out_names;
    std::vector<ColumnType> out_types;
    if (star) {
      for (size_t c = 0; c < table->num_columns(); ++c) {
        cols.push_back(static_cast<int>(c));
      }
    } else {
      for (const auto& item : proj) {
        const int ci = table->ColumnIndex(item.column);
        if (ci < 0) return Status::NotFound("no column " + item.column);
        cols.push_back(ci);
      }
    }
    for (int c : cols) {
      out_names.push_back(table->column_names()[c]);
      out_types.push_back(table->column(c).type());
    }
    Table out("result", out_names, out_types);
    for (size_t r : rows) {
      std::vector<Value> row;
      row.reserve(cols.size());
      for (int c : cols) row.push_back(table->Get(r, c));
      SPADE_RETURN_NOT_OK(out.AppendRow(row));
      if (limit >= 0 && static_cast<int64_t>(out.num_rows()) >= limit) break;
    }
    return out;
  }

  Catalog* catalog_;
  Lexer lex_;
};

}  // namespace

Result<Table> ExecuteSql(Catalog* catalog, const std::string& sql) {
  SqlRunner runner(catalog, sql);
  return runner.Run();
}

}  // namespace spade
