// Spatial datasets and the cell sources that feed out-of-core query
// execution. A CellSource exposes a dataset through its clustered grid
// index: the engine filters on the cells' bounding polygons, then loads
// only qualifying cells — from memory (InMemorySource) or from mmapped
// disk blocks with a bounded cache (DiskSource), modelling the paper's
// "cells are memory mapped and loaded as and when necessary".
#pragma once

#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/config.h"
#include "common/mmap_file.h"
#include "common/status.h"
#include "geom/geometry.h"
#include "storage/grid_index.h"
#include "storage/retry.h"

namespace spade {

/// \brief An in-memory spatial dataset: geometry vector, id = index.
struct SpatialDataset {
  std::string name;
  std::vector<Geometry> geoms;

  size_t size() const { return geoms.size(); }

  Box Bounds() const {
    Box b;
    for (const auto& g : geoms) b.Extend(g.Bounds());
    return b;
  }

  size_t TotalBytes() const {
    size_t total = 0;
    for (const auto& g : geoms) total += g.ByteSize();
    return total;
  }

  /// Dominant primitive class (datasets are homogeneous in the paper).
  GeomType primary_type() const {
    return geoms.empty() ? GeomType::kPoint : geoms[0].type();
  }
};

/// \brief The materialized contents of one grid cell.
struct CellData {
  std::vector<GeomId> ids;
  std::vector<Geometry> geoms;
  size_t bytes = 0;
};

/// \brief Abstract access to a grid-indexed dataset, cell by cell.
class CellSource {
 public:
  CellSource();
  virtual ~CellSource() = default;

  /// Process-unique id of this source instance. Used as a cache key by the
  /// engine (a raw pointer would be unsafe: a destroyed source's address
  /// can be reused by a new one).
  uint64_t uid() const { return uid_; }

  virtual const std::string& name() const = 0;
  virtual const GridIndex& index() const = 0;
  virtual size_t num_objects() const = 0;
  virtual GeomType primary_type() const = 0;

  /// Load (or fetch from cache) the contents of one cell. Time spent
  /// moving bytes is added to stats->io_seconds and the volume to
  /// stats->bytes_transferred.
  virtual Result<std::shared_ptr<const CellData>> LoadCell(
      size_t cell, QueryStats* stats) = 0;

  /// Content version of one cell. Frozen sources are always version 0;
  /// mutable sources (ingest snapshots) return a value that changes
  /// whenever the cell's visible contents change, so the engine can key
  /// prepared-cell and result caches by (uid, cell, version) and keep
  /// entries for several snapshots alive side by side.
  virtual uint64_t cell_version(size_t cell) const {
    (void)cell;
    return 0;
  }

  /// Epoch this source observes (0 for frozen sources). Two sources with
  /// the same uid but different snapshot epochs must never share batched
  /// canvas passes.
  virtual uint64_t snapshot_epoch() const { return 0; }

  /// Conservative membership test: may cell `cell` contain any object
  /// whose id is set in `wanted`? False positives only cost a cell load
  /// (loaded rows are re-filtered by id); false negatives would drop
  /// results and are forbidden. The default scans the index's id lists.
  virtual bool CellMayContain(size_t cell,
                              const std::vector<bool>& wanted) const;

 protected:
  /// Adopt another source's uid: an ingest snapshot is a *view* of its
  /// parent at a pinned epoch, and shares the parent's cache identity
  /// (entries are disambiguated by cell_version).
  explicit CellSource(uint64_t adopted_uid) : uid_(adopted_uid) {}

 private:
  uint64_t uid_;
};

/// \brief Dataset fully resident in CPU memory. Loading a cell still
/// copies the cell's geometry (the CPU -> GPU transfer the paper
/// identifies as the dominant cost), so I/O accounting stays faithful.
class InMemorySource : public CellSource {
 public:
  InMemorySource(std::string name, SpatialDataset dataset,
                 size_t max_cell_bytes, int min_zoom = 0, int max_zoom = 10);

  const std::string& name() const override { return name_; }
  const GridIndex& index() const override { return index_; }
  size_t num_objects() const override { return dataset_.size(); }
  GeomType primary_type() const override { return dataset_.primary_type(); }
  const SpatialDataset& dataset() const { return dataset_; }

  Result<std::shared_ptr<const CellData>> LoadCell(
      size_t cell, QueryStats* stats) override;

 private:
  std::string name_;
  SpatialDataset dataset_;
  GridIndex index_;
};

/// \brief Dataset stored as one block file per grid cell, memory mapped on
/// demand, with an LRU cache bounded by `cache_bytes` modelling limited
/// CPU memory.
class DiskSource : public CellSource {
 public:
  /// Write `dataset` into `dir` (index metadata + one block per cell).
  static Result<std::unique_ptr<DiskSource>> Create(
      const std::string& dir, const SpatialDataset& dataset,
      size_t max_cell_bytes, size_t cache_bytes, int min_zoom = 0,
      int max_zoom = 10);

  /// Open a previously created directory.
  static Result<std::unique_ptr<DiskSource>> Open(const std::string& dir,
                                                  size_t cache_bytes);

  const std::string& name() const override { return name_; }
  const GridIndex& index() const override { return index_; }
  size_t num_objects() const override { return num_objects_; }
  GeomType primary_type() const override { return type_; }

  Result<std::shared_ptr<const CellData>> LoadCell(
      size_t cell, QueryStats* stats) override;

  /// Retry policy for transient block-read failures (see RetryPolicy).
  /// Checksum mismatches are never retried: the corrupt bytes are on disk.
  void set_retry_policy(RetryPolicy policy) {
    std::lock_guard<std::mutex> lock(mu_);
    retry_policy_ = std::move(policy);
  }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

 private:
  DiskSource() = default;

  std::string dir_;
  std::string name_;
  GridIndex index_;
  size_t num_objects_ = 0;
  GeomType type_ = GeomType::kPoint;
  size_t cache_bytes_ = 0;
  RetryPolicy retry_policy_;

  // LRU cache of deserialized cells. Guarded by mu_: service workers load
  // cells of one source concurrently, and serializing per-source models a
  // single disk head anyway.
  std::mutex mu_;
  struct CacheEntry {
    std::shared_ptr<const CellData> data;
    std::list<size_t>::iterator lru_it;
  };
  std::list<size_t> lru_;
  std::unordered_map<size_t, CacheEntry> cache_;
  size_t cached_bytes_ = 0;
};

/// Convenience: build an InMemorySource from a dataset with the cell-size
/// rule of `config` (cell <= device budget / 4).
std::unique_ptr<InMemorySource> MakeInMemorySource(std::string name,
                                                   SpatialDataset dataset,
                                                   const SpadeConfig& config);

}  // namespace spade
