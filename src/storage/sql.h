// A minimal SQL interface over the embedded column store. SPADE loads and
// stores all data using SQL so it can be swapped onto any relational
// backend (Section 3, "Relational Data Store"); this module provides the
// subset the engine needs:
//
//   CREATE TABLE t (a INT, b DOUBLE, c TEXT)
//   DROP TABLE t
//   INSERT INTO t VALUES (1, 2.5, 'x'), (2, 3.5, 'y')
//   SELECT a, c FROM t WHERE a >= 1 AND c = 'x' LIMIT 10
//   SELECT COUNT(*) FROM t [WHERE ...]
#pragma once

#include <string>

#include "common/status.h"
#include "storage/catalog.h"

namespace spade {

/// Execute one SQL statement against the catalog. SELECTs return the
/// result table; DDL/DML return an empty table named "ok".
Result<Table> ExecuteSql(Catalog* catalog, const std::string& sql);

}  // namespace spade
