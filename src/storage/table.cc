#include "storage/table.h"

#include <cstring>
#include <sstream>

namespace spade {

namespace {

// Simple length-prefixed binary encoding helpers.
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutStr(std::string* out, const std::string& s) {
  PutU64(out, s.size());
  out->append(s);
}

class Reader {
 public:
  explicit Reader(const std::string& s) : s_(s) {}

  Result<uint64_t> U64() {
    if (pos_ + sizeof(uint64_t) > s_.size()) {
      return Status::IOError("table blob truncated");
    }
    uint64_t v;
    std::memcpy(&v, s_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }
  Result<double> F64() {
    if (pos_ + sizeof(double) > s_.size()) {
      return Status::IOError("table blob truncated");
    }
    double v;
    std::memcpy(&v, s_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }
  Result<std::string> Str() {
    SPADE_ASSIGN_OR_RETURN(uint64_t len, U64());
    if (pos_ + len > s_.size()) return Status::IOError("table blob truncated");
    std::string out = s_.substr(pos_, len);
    pos_ += len;
    return out;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Table::Table(std::string name, std::vector<std::string> column_names,
             std::vector<ColumnType> column_types)
    : name_(std::move(name)), names_(std::move(column_names)) {
  columns_.reserve(column_types.size());
  for (ColumnType t : column_types) columns_.emplace_back(t);
}

int Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

Status Table::AppendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch for table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    SPADE_RETURN_NOT_OK(columns_[i].Append(row[i]));
  }
  return Status::OK();
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  for (size_t c = 0; c < names_.size(); ++c) {
    if (c > 0) os << " | ";
    os << names_[c];
  }
  os << '\n';
  const size_t rows = std::min(max_rows, num_rows());
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << " | ";
      os << ValueToString(Get(r, c));
    }
    os << '\n';
  }
  if (rows < num_rows()) {
    os << "... (" << num_rows() - rows << " more rows)\n";
  }
  return os.str();
}

std::string Table::Serialize() const {
  std::string out;
  PutStr(&out, name_);
  PutU64(&out, names_.size());
  for (size_t c = 0; c < names_.size(); ++c) {
    PutStr(&out, names_[c]);
    PutU64(&out, static_cast<uint64_t>(columns_[c].type()));
  }
  PutU64(&out, num_rows());
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Column& col = columns_[c];
    for (size_t r = 0; r < num_rows(); ++r) {
      switch (col.type()) {
        case ColumnType::kInt64:
          PutU64(&out, static_cast<uint64_t>(col.ints()[r]));
          break;
        case ColumnType::kDouble:
          PutF64(&out, col.doubles()[r]);
          break;
        case ColumnType::kText:
          PutStr(&out, col.texts()[r]);
          break;
      }
    }
  }
  return out;
}

Result<Table> Table::Deserialize(const std::string& bytes) {
  Reader rd(bytes);
  SPADE_ASSIGN_OR_RETURN(std::string name, rd.Str());
  SPADE_ASSIGN_OR_RETURN(uint64_t ncols, rd.U64());
  std::vector<std::string> names;
  std::vector<ColumnType> types;
  for (uint64_t c = 0; c < ncols; ++c) {
    SPADE_ASSIGN_OR_RETURN(std::string cname, rd.Str());
    SPADE_ASSIGN_OR_RETURN(uint64_t t, rd.U64());
    if (t > 2) return Status::IOError("bad column type");
    names.push_back(std::move(cname));
    types.push_back(static_cast<ColumnType>(t));
  }
  Table table(std::move(name), std::move(names), types);
  SPADE_ASSIGN_OR_RETURN(uint64_t nrows, rd.U64());
  for (uint64_t c = 0; c < ncols; ++c) {
    for (uint64_t r = 0; r < nrows; ++r) {
      switch (types[c]) {
        case ColumnType::kInt64: {
          SPADE_ASSIGN_OR_RETURN(uint64_t v, rd.U64());
          SPADE_RETURN_NOT_OK(
              table.column(c).Append(static_cast<int64_t>(v)));
          break;
        }
        case ColumnType::kDouble: {
          SPADE_ASSIGN_OR_RETURN(double v, rd.F64());
          SPADE_RETURN_NOT_OK(table.column(c).Append(v));
          break;
        }
        case ColumnType::kText: {
          SPADE_ASSIGN_OR_RETURN(std::string v, rd.Str());
          SPADE_RETURN_NOT_OK(table.column(c).Append(std::move(v)));
          break;
        }
      }
    }
  }
  return table;
}

}  // namespace spade
