// Dataset ingestion: load spatial datasets from CSV point files and WKT
// files, and write them back — the formats the paper's datasets come in
// (Table 1: "a CSV file with only the coordinates was used … files in WKT
// format for polygonal data sets").
#pragma once

#include <limits>
#include <string>

#include "common/status.h"
#include "storage/dataset.h"

namespace spade {

/// Load a point dataset from CSV. Each line holds `x_col` and `y_col`
/// fields (0-based) separated by `delim`; a header line is skipped when
/// its fields are not numeric. Malformed lines are skipped and counted:
/// the count is reported through `skipped_rows` and the load fails with
/// kInvalidArgument once more than `max_skipped_rows` lines are bad
/// (excessive corruption should not pass silently).
struct CsvLoadOptions {
  char delim = ',';
  int x_col = 0;
  int y_col = 1;
  size_t max_rows = 0;  ///< 0 = unlimited
  size_t max_skipped_rows = std::numeric_limits<size_t>::max();
  size_t* skipped_rows = nullptr;  ///< out: malformed-line count
};

Result<SpatialDataset> LoadPointsCsv(const std::string& path,
                                     const std::string& name,
                                     const CsvLoadOptions& options = {});

/// Parse one CSV line into a point with exactly LoadPointsCsv's field
/// rules (delimiter split, strtod with trailing whitespace/CR tolerance).
/// Returns false when the line is malformed. Shared with the streaming
/// ingest CSV tail so online appends count bad rows the same way offline
/// loads do.
bool ParseCsvPointLine(const std::string& line, const CsvLoadOptions& options,
                       Vec2* out);

/// Write a point dataset as "x,y" lines.
Status SavePointsCsv(const SpatialDataset& dataset, const std::string& path);

/// Load a dataset from a file of WKT geometries, one per line. Empty lines
/// are skipped; a parse failure fails the load (data corruption should not
/// pass silently).
Result<SpatialDataset> LoadWktFile(const std::string& path,
                                   const std::string& name,
                                   size_t max_rows = 0);

/// Write a dataset as one WKT per line.
Status SaveWktFile(const SpatialDataset& dataset, const std::string& path);

}  // namespace spade
