// Binary serialization of geometry blocks. Each clustered-grid-index cell
// is stored as one block; out-of-core queries mmap blocks and deserialize
// them on demand (Section 5.3).
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "geom/geometry.h"

namespace spade {

/// Serialize geometries and their ids into a compact binary block.
std::string SerializeBlock(const std::vector<GeomId>& ids,
                           const std::vector<Geometry>& geoms);

/// Inverse of SerializeBlock.
Status DeserializeBlock(const uint8_t* data, size_t size,
                        std::vector<GeomId>* ids,
                        std::vector<Geometry>* geoms);

}  // namespace spade
