// Binary serialization of geometry blocks. Each clustered-grid-index cell
// is stored as one block; out-of-core queries mmap blocks and deserialize
// them on demand (Section 5.3).
//
// Block format v2 (written by SerializeBlock):
//   [u32 magic = kBlockMagicV2][u32 crc32c(payload)][payload]
// where payload is the v1 layout: u32 count, then per geometry
// (u32 id, u8 type, type-specific coordinate data). DeserializeBlock
// verifies the checksum and also accepts headerless v1 blocks, which are
// distinguished by their leading geometry count: a v1 block would need
// ~3.2e9 geometries to collide with the magic, orders of magnitude more
// than any cell sized by the device-memory rule can hold.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "geom/geometry.h"

namespace spade {

/// First word of a v2 block ("SPB2" little-endian, high bit set so it can
/// never equal a plausible v1 geometry count).
constexpr uint32_t kBlockMagicV2 = 0xB2425053u;

/// Out-facts of one DeserializeBlock call, for fault accounting.
struct BlockReadInfo {
  int version = 0;             ///< 1 or 2, set once the header is decoded
  bool checksum_failed = false;///< v2 CRC mismatch (corruption, not truncation)
};

/// Serialize geometries and their ids into a compact binary v2 block.
std::string SerializeBlock(const std::vector<GeomId>& ids,
                           const std::vector<Geometry>& geoms);

/// Inverse of SerializeBlock. Accepts v2 (checksummed) and legacy v1
/// blocks. On a v2 checksum mismatch returns kIOError with "checksum" in
/// the message and sets info->checksum_failed when `info` is given.
Status DeserializeBlock(const uint8_t* data, size_t size,
                        std::vector<GeomId>* ids,
                        std::vector<Geometry>* geoms,
                        BlockReadInfo* info = nullptr);

}  // namespace spade
