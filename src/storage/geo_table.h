// Relational storage of spatial datasets (Section 3: "All data, indexes,
// and meta-data used by Spade are stored as relational tables"). A dataset
// becomes a (id INT, wkt TEXT) table in the catalog, loadable back into a
// SpatialDataset; integration with an external RDBMS only needs the same
// two columns.
#pragma once

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/dataset.h"

namespace spade {

/// Store `dataset` as a relational table named after the dataset.
Status RegisterDataset(Catalog* catalog, const SpatialDataset& dataset);

/// Load a previously registered dataset back from its table.
Result<SpatialDataset> LoadDataset(const Catalog& catalog,
                                   const std::string& name);

}  // namespace spade
