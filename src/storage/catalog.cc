#include "storage/catalog.h"

#include <filesystem>

#include "common/mmap_file.h"

namespace spade {

namespace fs = std::filesystem;

Status Catalog::CreateTable(const std::string& name,
                            std::vector<std::string> column_names,
                            std::vector<ColumnType> column_types) {
  if (HasTable(name)) {
    return Status::InvalidArgument("table already exists: " + name);
  }
  if (column_names.size() != column_types.size()) {
    return Status::InvalidArgument("schema arity mismatch for " + name);
  }
  tables_[name] = std::make_unique<Table>(name, std::move(column_names),
                                          std::move(column_types));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("no such table: " + name);
  }
  return Status::OK();
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return static_cast<const Table*>(it->second.get());
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status Catalog::SaveToDir(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IOError("create_directories " + dir + ": " + ec.message());
  for (const auto& [name, table] : tables_) {
    const std::string bytes = table->Serialize();
    SPADE_RETURN_NOT_OK(
        WriteFile(dir + "/" + name + ".tbl", bytes.data(), bytes.size()));
  }
  return Status::OK();
}

Status Catalog::LoadFromDir(const std::string& dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".tbl") continue;
    SPADE_ASSIGN_OR_RETURN(std::string bytes,
                           ReadFileToString(entry.path().string()));
    SPADE_ASSIGN_OR_RETURN(Table table, Table::Deserialize(bytes));
    const std::string name = table.name();
    tables_[name] = std::make_unique<Table>(std::move(table));
  }
  if (ec) return Status::IOError("directory_iterator " + dir + ": " + ec.message());
  return Status::OK();
}

}  // namespace spade
