// Relational tables for the embedded column store.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/column.h"

namespace spade {

/// \brief A named, schema-typed relational table of columns.
class Table {
 public:
  Table() = default;
  Table(std::string name, std::vector<std::string> column_names,
        std::vector<ColumnType> column_types);

  const std::string& name() const { return name_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const std::vector<std::string>& column_names() const { return names_; }
  int ColumnIndex(const std::string& name) const;

  const Column& column(size_t i) const { return columns_[i]; }
  Column& column(size_t i) { return columns_[i]; }

  /// Append a full row; the value count must match the schema.
  Status AppendRow(const std::vector<Value>& row);

  Value Get(size_t row, size_t col) const { return columns_[col].Get(row); }

  /// Render rows as text for debugging / examples.
  std::string ToString(size_t max_rows = 20) const;

  /// Binary (de)serialization for persistence.
  std::string Serialize() const;
  static Result<Table> Deserialize(const std::string& bytes);

 private:
  std::string name_;
  std::vector<std::string> names_;
  std::vector<Column> columns_;
};

}  // namespace spade
