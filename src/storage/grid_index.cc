#include "storage/grid_index.h"

#include <algorithm>
#include <map>

#include "geom/convex_hull.h"

namespace spade {

namespace {

struct CellKey {
  int cx, cy;
  bool operator<(const CellKey& o) const {
    return cx < o.cx || (cx == o.cx && cy < o.cy);
  }
};

}  // namespace

GridIndex GridIndex::Build(const std::vector<Geometry>& geoms,
                           size_t max_cell_bytes, int min_zoom, int max_zoom) {
  GridIndex index;
  for (const auto& g : geoms) index.extent.Extend(g.Bounds());
  if (geoms.empty()) return index;
  // Guard against degenerate extents.
  if (index.extent.Width() <= 0 || index.extent.Height() <= 0) {
    index.extent = index.extent.Expanded(1e-9);
  }

  std::vector<size_t> geom_bytes(geoms.size());
  for (size_t i = 0; i < geoms.size(); ++i) geom_bytes[i] = geoms[i].ByteSize();

  for (int zoom = min_zoom; zoom <= max_zoom; ++zoom) {
    const int res = 1 << zoom;
    const double cw = index.extent.Width() / res;
    const double ch = index.extent.Height() / res;
    std::map<CellKey, std::vector<GeomId>> assignment;
    std::map<CellKey, size_t> cell_bytes;
    size_t worst = 0;
    for (size_t i = 0; i < geoms.size(); ++i) {
      const Vec2 c = geoms[i].Centroid();
      CellKey key{
          std::clamp(static_cast<int>((c.x - index.extent.min.x) / cw), 0,
                     res - 1),
          std::clamp(static_cast<int>((c.y - index.extent.min.y) / ch), 0,
                     res - 1)};
      assignment[key].push_back(static_cast<GeomId>(i));
      worst = std::max(worst, cell_bytes[key] += geom_bytes[i]);
    }
    if (worst > max_cell_bytes && zoom < max_zoom) continue;

    index.zoom = zoom;
    index.cells.clear();
    index.cells.reserve(assignment.size());
    for (auto& [key, ids] : assignment) {
      GridCell cell;
      cell.cx = key.cx;
      cell.cy = key.cy;
      cell.bytes = cell_bytes[key];
      std::vector<const Geometry*> members;
      members.reserve(ids.size());
      for (GeomId id : ids) {
        cell.box.Extend(geoms[id].Bounds());
        members.push_back(&geoms[id]);
      }
      cell.bounding_poly = ConvexHullPolygon(members);
      cell.ids = std::move(ids);
      index.cells.push_back(std::move(cell));
    }
    break;
  }
  return index;
}

}  // namespace spade
