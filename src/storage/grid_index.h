// The clustered grid index (Section 5.3): partitions a dataset into grid
// cells sized so each cell's block fits the device-memory rule of
// Section 6.1. Each non-empty cell stores the *convex hull* of its
// contents as a bounding polygon (not just a bounding box), so GPU-based
// selections/joins over the cell polygons implement the index-filtering
// phase. Objects are assigned to the cell containing their centroid and
// the cell's bounds are expanded, so cells may overlap — the query
// strategy is unaffected because filtering runs on the bounding polygons.
#pragma once

#include <vector>

#include "geom/geometry.h"

namespace spade {

/// \brief One non-empty cell of the clustered grid index.
struct GridCell {
  int cx = 0, cy = 0;       ///< cell coordinates at the chosen zoom
  Box box;                  ///< expanded bounds over member geometries
  Polygon bounding_poly;    ///< convex hull of member geometries
  std::vector<GeomId> ids;  ///< member object ids (indexes into dataset)
  size_t bytes = 0;         ///< serialized payload size of the cell block
};

/// \brief Clustered grid index over one dataset.
struct GridIndex {
  Box extent;
  int zoom = 0;  ///< grid resolution is 2^zoom x 2^zoom over the extent
  std::vector<GridCell> cells;

  int resolution() const { return 1 << zoom; }
  size_t num_cells() const { return cells.size(); }

  /// Build the index: starting from `min_zoom`, double the resolution
  /// (OSM-style zoom levels, Section 6.1) until every cell's payload is at
  /// most `max_cell_bytes` or `max_zoom` is reached.
  static GridIndex Build(const std::vector<Geometry>& geoms,
                         size_t max_cell_bytes, int min_zoom = 0,
                         int max_zoom = 10);
};

}  // namespace spade
