#include "storage/dataset.h"

#include <atomic>
#include <cstring>
#include <filesystem>

#include "common/stopwatch.h"
#include "storage/block.h"

namespace spade {

namespace fs = std::filesystem;

CellSource::CellSource() {
  static std::atomic<uint64_t> next_uid{1};
  uid_ = next_uid.fetch_add(1, std::memory_order_relaxed);
}

bool CellSource::CellMayContain(size_t cell,
                                const std::vector<bool>& wanted) const {
  const GridIndex& idx = index();
  if (cell >= idx.cells.size()) return false;
  for (GeomId id : idx.cells[cell].ids) {
    if (id < wanted.size() && wanted[id]) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// InMemorySource
// ---------------------------------------------------------------------------

InMemorySource::InMemorySource(std::string name, SpatialDataset dataset,
                               size_t max_cell_bytes, int min_zoom,
                               int max_zoom)
    : name_(std::move(name)), dataset_(std::move(dataset)) {
  index_ = GridIndex::Build(dataset_.geoms, max_cell_bytes, min_zoom, max_zoom);
}

Result<std::shared_ptr<const CellData>> InMemorySource::LoadCell(
    size_t cell, QueryStats* stats) {
  if (cell >= index_.cells.size()) {
    return Status::InvalidArgument("cell out of range");
  }
  Stopwatch sw;
  const GridCell& gc = index_.cells[cell];
  auto data = std::make_shared<CellData>();
  data->ids = gc.ids;
  data->geoms.reserve(gc.ids.size());
  // Deep copy: this is the CPU -> GPU transfer of the cell's payload.
  for (GeomId id : gc.ids) data->geoms.push_back(dataset_.geoms[id]);
  data->bytes = gc.bytes;
  if (stats != nullptr) {
    stats->io_seconds += sw.ElapsedSeconds();
    stats->bytes_transferred += static_cast<int64_t>(gc.bytes);
  }
  return std::shared_ptr<const CellData>(std::move(data));
}

std::unique_ptr<InMemorySource> MakeInMemorySource(std::string name,
                                                   SpatialDataset dataset,
                                                   const SpadeConfig& config) {
  return std::make_unique<InMemorySource>(std::move(name), std::move(dataset),
                                          config.EffectiveCellBytes());
}

// ---------------------------------------------------------------------------
// DiskSource
// ---------------------------------------------------------------------------

namespace {

std::string CellPath(const std::string& dir, size_t cell) {
  return dir + "/cell_" + std::to_string(cell) + ".blk";
}
std::string MetaPath(const std::string& dir) { return dir + "/index.meta"; }

// Index metadata encoding: extent, zoom, per-cell (cx, cy, box, hull, ids).
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutF64(std::string* out, double v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

class MetaReader {
 public:
  explicit MetaReader(const std::string& s) : s_(s) {}
  bool U64(uint64_t* v) {
    if (pos_ + 8 > s_.size()) return false;
    std::memcpy(v, s_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }
  bool F64(double* v) {
    if (pos_ + 8 > s_.size()) return false;
    std::memcpy(v, s_.data() + pos_, 8);
    pos_ += 8;
    return true;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

std::string SerializeIndexMeta(const std::string& name, size_t num_objects,
                               GeomType type, const GridIndex& index) {
  std::string out;
  PutU64(&out, name.size());
  out.append(name);
  PutU64(&out, num_objects);
  PutU64(&out, static_cast<uint64_t>(type));
  PutF64(&out, index.extent.min.x);
  PutF64(&out, index.extent.min.y);
  PutF64(&out, index.extent.max.x);
  PutF64(&out, index.extent.max.y);
  PutU64(&out, static_cast<uint64_t>(index.zoom));
  PutU64(&out, index.cells.size());
  for (const auto& cell : index.cells) {
    PutU64(&out, static_cast<uint64_t>(cell.cx));
    PutU64(&out, static_cast<uint64_t>(cell.cy));
    PutF64(&out, cell.box.min.x);
    PutF64(&out, cell.box.min.y);
    PutF64(&out, cell.box.max.x);
    PutF64(&out, cell.box.max.y);
    PutU64(&out, cell.bytes);
    PutU64(&out, cell.bounding_poly.outer.size());
    for (const auto& p : cell.bounding_poly.outer) {
      PutF64(&out, p.x);
      PutF64(&out, p.y);
    }
    PutU64(&out, cell.ids.size());
    for (GeomId id : cell.ids) PutU64(&out, id);
  }
  return out;
}

Status DeserializeIndexMeta(const std::string& bytes, std::string* name,
                            size_t* num_objects, GeomType* type,
                            GridIndex* index) {
  MetaReader rd(bytes);
  uint64_t name_len;
  if (!rd.U64(&name_len)) return Status::IOError("meta truncated");
  // MetaReader has no raw-string read; re-slice manually.
  if (8 + name_len > bytes.size()) return Status::IOError("meta truncated");
  *name = bytes.substr(8, name_len);
  MetaReader rd2(bytes);
  uint64_t skip;
  rd2.U64(&skip);
  // Advance past the name by re-reading doubles is awkward; rebuild reader.
  const std::string rest = bytes.substr(8 + name_len);
  MetaReader rd3(rest);
  uint64_t nobj;
  if (!rd3.U64(&nobj)) return Status::IOError("meta truncated");
  *num_objects = nobj;
  uint64_t type_v;
  if (!rd3.U64(&type_v) || type_v > 2) return Status::IOError("meta truncated");
  *type = static_cast<GeomType>(type_v);
  if (!rd3.F64(&index->extent.min.x) || !rd3.F64(&index->extent.min.y) ||
      !rd3.F64(&index->extent.max.x) || !rd3.F64(&index->extent.max.y)) {
    return Status::IOError("meta truncated");
  }
  uint64_t zoom, ncells;
  if (!rd3.U64(&zoom) || !rd3.U64(&ncells)) {
    return Status::IOError("meta truncated");
  }
  index->zoom = static_cast<int>(zoom);
  index->cells.resize(ncells);
  for (auto& cell : index->cells) {
    uint64_t cx, cy, cbytes, hull_n, ids_n;
    if (!rd3.U64(&cx) || !rd3.U64(&cy)) return Status::IOError("meta truncated");
    cell.cx = static_cast<int>(cx);
    cell.cy = static_cast<int>(cy);
    if (!rd3.F64(&cell.box.min.x) || !rd3.F64(&cell.box.min.y) ||
        !rd3.F64(&cell.box.max.x) || !rd3.F64(&cell.box.max.y)) {
      return Status::IOError("meta truncated");
    }
    if (!rd3.U64(&cbytes) || !rd3.U64(&hull_n)) {
      return Status::IOError("meta truncated");
    }
    cell.bytes = cbytes;
    cell.bounding_poly.outer.resize(hull_n);
    for (auto& p : cell.bounding_poly.outer) {
      if (!rd3.F64(&p.x) || !rd3.F64(&p.y)) {
        return Status::IOError("meta truncated");
      }
    }
    if (!rd3.U64(&ids_n)) return Status::IOError("meta truncated");
    cell.ids.resize(ids_n);
    for (auto& id : cell.ids) {
      uint64_t v;
      if (!rd3.U64(&v)) return Status::IOError("meta truncated");
      id = static_cast<GeomId>(v);
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<DiskSource>> DiskSource::Create(
    const std::string& dir, const SpatialDataset& dataset,
    size_t max_cell_bytes, size_t cache_bytes, int min_zoom, int max_zoom) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("create_directories " + dir + ": " + ec.message());
  }
  GridIndex index =
      GridIndex::Build(dataset.geoms, max_cell_bytes, min_zoom, max_zoom);
  for (size_t c = 0; c < index.cells.size(); ++c) {
    const GridCell& cell = index.cells[c];
    std::vector<Geometry> geoms;
    geoms.reserve(cell.ids.size());
    for (GeomId id : cell.ids) geoms.push_back(dataset.geoms[id]);
    const std::string block = SerializeBlock(cell.ids, geoms);
    SPADE_RETURN_NOT_OK(WriteFile(CellPath(dir, c), block.data(), block.size()));
  }
  const std::string meta = SerializeIndexMeta(dataset.name, dataset.size(),
                                              dataset.primary_type(), index);
  SPADE_RETURN_NOT_OK(WriteFile(MetaPath(dir), meta.data(), meta.size()));
  return Open(dir, cache_bytes);
}

Result<std::unique_ptr<DiskSource>> DiskSource::Open(const std::string& dir,
                                                     size_t cache_bytes) {
  auto src = std::unique_ptr<DiskSource>(new DiskSource());
  src->dir_ = dir;
  src->cache_bytes_ = cache_bytes;
  SPADE_ASSIGN_OR_RETURN(std::string meta, ReadFileToString(MetaPath(dir)));
  SPADE_RETURN_NOT_OK(DeserializeIndexMeta(
      meta, &src->name_, &src->num_objects_, &src->type_, &src->index_));
  return src;
}

Result<std::shared_ptr<const CellData>> DiskSource::LoadCell(
    size_t cell, QueryStats* stats) {
  if (cell >= index_.cells.size()) {
    return Status::InvalidArgument("cell out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(cell);
  if (it != cache_.end()) {
    lru_.erase(it->second.lru_it);
    lru_.push_front(cell);
    it->second.lru_it = lru_.begin();
    // Cache hit still pays the CPU -> GPU share of the transfer.
    if (stats != nullptr) {
      stats->bytes_transferred +=
          static_cast<int64_t>(index_.cells[cell].bytes);
    }
    return it->second.data;
  }

  Stopwatch sw;
  auto data = std::make_shared<CellData>();
  // Transient read errors (kIOError) are retried with backoff; a checksum
  // mismatch is permanent corruption (re-reading returns the same bytes)
  // and aborts the retry loop immediately.
  bool checksum_failed = false;
  RetryPolicy policy = retry_policy_;
  policy.retryable = [&checksum_failed](const Status& s) {
    return s.code() == Status::Code::kIOError && !checksum_failed;
  };
  const std::string path = CellPath(dir_, cell);
  const Status load_status = RunWithRetry(
      policy,
      [&]() -> Status {
        // A failed earlier attempt may have partially deserialized.
        data->ids.clear();
        data->geoms.clear();
        auto file = MmapFile::Open(path);
        if (!file.ok()) return file.status();
        BlockReadInfo info;
        const Status st =
            DeserializeBlock(file.value().data(), file.value().size(),
                             &data->ids, &data->geoms, &info);
        if (info.checksum_failed) {
          checksum_failed = true;
          if (stats != nullptr) stats->checksum_failures++;
        }
        return st;
      },
      stats != nullptr ? &stats->retries : nullptr);
  if (!load_status.ok()) {
    if (load_status.code() == Status::Code::kIOError) {
      return Status::IOError("LoadCell " + path + ": " + load_status.message());
    }
    return load_status;  // injected / non-I/O codes pass through unchanged
  }
  data->bytes = index_.cells[cell].bytes;
  if (stats != nullptr) {
    stats->io_seconds += sw.ElapsedSeconds();
    stats->bytes_transferred += static_cast<int64_t>(data->bytes);
  }

  // Insert with LRU eviction.
  while (!lru_.empty() && cached_bytes_ + data->bytes > cache_bytes_) {
    const size_t victim = lru_.back();
    lru_.pop_back();
    cached_bytes_ -= cache_[victim].data->bytes;
    cache_.erase(victim);
  }
  if (data->bytes <= cache_bytes_) {
    lru_.push_front(cell);
    cache_[cell] = {data, lru_.begin()};
    cached_bytes_ += data->bytes;
  }
  return std::shared_ptr<const CellData>(data);
}

}  // namespace spade
