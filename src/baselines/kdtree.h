// A block kd-tree over points: internal nodes split on the median of the
// wider axis, leaves hold up to `leaf_size` points stored contiguously.
// With leaf_size=4096 this is the STIG index layout [12] (leaf blocks are
// scanned in parallel on the device); with small leaves it doubles as the
// point index of the S2-like in-memory baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/vec2.h"

namespace spade {

/// \brief Static block kd-tree over 2-D points.
class BlockKdTree {
 public:
  BlockKdTree() = default;

  /// Bulk-build over `points`; point i keeps id i.
  static BlockKdTree Build(const std::vector<Vec2>& points, int leaf_size);

  size_t size() const { return points_.size(); }

  struct Leaf {
    Box box;
    uint32_t begin;  ///< index into the reordered point array
    uint32_t end;
  };

  /// All leaves whose box intersects `query` (the filter phase).
  void CollectLeaves(const Box& query,
                     const std::function<void(const Leaf&)>& fn) const;

  /// Reordered points and their original ids (for leaf scans).
  const std::vector<Vec2>& points() const { return points_; }
  const std::vector<uint32_t>& ids() const { return ids_; }

  /// fn(id, point) for every point in `query`.
  void RangeQuery(const Box& query,
                  const std::function<void(uint32_t, const Vec2&)>& fn) const;

  /// fn(id, point) for every point within distance r of p.
  void RadiusQuery(const Vec2& p, double r,
                   const std::function<void(uint32_t, const Vec2&)>& fn) const;

  /// The k nearest neighbours of p as (id, distance), sorted by distance.
  std::vector<std::pair<uint32_t, double>> KNearest(const Vec2& p,
                                                    size_t k) const;

  size_t num_leaves() const { return leaves_.size(); }

 private:
  struct Node {
    Box box;
    int32_t left = -1;    ///< node index; -1 for leaf
    int32_t right = -1;
    int32_t leaf = -1;    ///< leaf index when leaf node
  };

  int32_t BuildRec(std::vector<uint32_t>& order, uint32_t lo, uint32_t hi,
                   const std::vector<Vec2>& pts, int leaf_size);

  std::vector<Node> nodes_;
  std::vector<Leaf> leaves_;
  std::vector<Vec2> points_;   // reordered
  std::vector<uint32_t> ids_;  // original ids, parallel to points_
  int32_t root_ = -1;
};

}  // namespace spade
