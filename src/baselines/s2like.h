// "S2-like" in-memory spatial library: the large-main-memory-server
// baseline of the paper's evaluation (Section 6.1, group 1). Mirrors the
// parts of Google S2 the paper exercises: a point index optimized for
// distance/kNN queries (S2PointIndex) and a shape index for polygonal data
// (S2ShapeIndex), both with exact geometric refinement. The whole dataset
// must be resident in memory — exactly the constraint that makes this
// baseline unusable on commodity hardware for big data.
#pragma once

#include <memory>
#include <vector>

#include "baselines/kdtree.h"
#include "baselines/rtree.h"
#include "geom/geometry.h"
#include "storage/dataset.h"

namespace spade {

/// \brief In-memory point index (kd-tree with small leaves), optimized for
/// distance and kNN queries like S2PointIndex.
class S2LikePointIndex {
 public:
  explicit S2LikePointIndex(std::vector<Vec2> points);

  size_t size() const { return points_.size(); }
  const std::vector<Vec2>& points() const { return points_; }

  /// Ids of points intersecting the polygon (filter + exact refine).
  std::vector<uint32_t> SelectInPolygon(const MultiPolygon& poly) const;

  /// Ids of points within distance r of p.
  std::vector<uint32_t> WithinDistance(const Vec2& p, double r) const;

  /// Ids of points within distance r of an arbitrary geometry (exact).
  std::vector<uint32_t> WithinDistanceOfGeometry(const Geometry& g,
                                                 double r) const;

  /// The k nearest points to p, sorted by distance.
  std::vector<std::pair<uint32_t, double>> KNearest(const Vec2& p,
                                                    size_t k) const;

 private:
  std::vector<Vec2> points_;
  BlockKdTree tree_;
};

/// \brief In-memory shape index (STR R-tree over shape bounds) with exact
/// refinement, like S2ShapeIndex.
class S2LikeShapeIndex {
 public:
  /// The index references `shapes` (must outlive the index).
  explicit S2LikeShapeIndex(const std::vector<Geometry>* shapes);

  size_t size() const { return shapes_->size(); }

  /// Ids of shapes intersecting the polygonal constraint.
  std::vector<uint32_t> SelectIntersecting(const MultiPolygon& poly) const;

  /// Join with a point index: (shape id, point id) pairs.
  std::vector<std::pair<uint32_t, uint32_t>> JoinPoints(
      const S2LikePointIndex& points) const;

  /// Join with another shape index: intersecting (id, id) pairs.
  std::vector<std::pair<uint32_t, uint32_t>> JoinShapes(
      const S2LikeShapeIndex& other) const;

 private:
  const std::vector<Geometry>* shapes_;
  RTree rtree_;
};

}  // namespace spade
