#include "baselines/cluster.h"

#include <algorithm>
#include <mutex>
#include <random>

#include "geom/predicates.h"

namespace spade {

namespace {

// Recursive space partitioning over a coordinate sample: KDB (binary median
// splits, widest axis) or quadtree (4-way splits of the fullest region).
std::vector<Box> BuildPartitionBoxes(const Box& extent,
                                     std::vector<Vec2> sample,
                                     const ClusterConfig& config) {
  struct Region {
    Box box;
    std::vector<Vec2> sample;
  };
  std::vector<Region> regions;
  regions.push_back({extent, std::move(sample)});

  auto largest = [&]() -> size_t {
    size_t best = 0;
    for (size_t i = 1; i < regions.size(); ++i) {
      if (regions[i].sample.size() > regions[best].sample.size()) best = i;
    }
    return best;
  };

  const size_t target = static_cast<size_t>(config.num_partitions);
  while (regions.size() < target) {
    const size_t idx = largest();
    Region region = std::move(regions[idx]);
    regions.erase(regions.begin() + idx);
    if (region.sample.size() < 2) {
      regions.push_back(std::move(region));
      break;  // cannot split further
    }
    if (config.partitioning == ClusterConfig::Partitioning::kKdb) {
      const bool split_x = region.box.Width() >= region.box.Height();
      auto mid = region.sample.begin() + region.sample.size() / 2;
      std::nth_element(region.sample.begin(), mid, region.sample.end(),
                       [&](const Vec2& a, const Vec2& b) {
                         return split_x ? a.x < b.x : a.y < b.y;
                       });
      const double cut = split_x ? mid->x : mid->y;
      Region lo, hi;
      lo.box = region.box;
      hi.box = region.box;
      if (split_x) {
        lo.box.max.x = cut;
        hi.box.min.x = cut;
      } else {
        lo.box.max.y = cut;
        hi.box.min.y = cut;
      }
      for (const Vec2& p : region.sample) {
        ((split_x ? p.x : p.y) < cut ? lo : hi).sample.push_back(p);
      }
      regions.push_back(std::move(lo));
      regions.push_back(std::move(hi));
    } else {  // quadtree split
      const Vec2 c = region.box.Center();
      Region quads[4];
      quads[0].box = Box(region.box.min.x, region.box.min.y, c.x, c.y);
      quads[1].box = Box(c.x, region.box.min.y, region.box.max.x, c.y);
      quads[2].box = Box(region.box.min.x, c.y, c.x, region.box.max.y);
      quads[3].box = Box(c.x, c.y, region.box.max.x, region.box.max.y);
      for (const Vec2& p : region.sample) {
        const int qi = (p.x >= c.x ? 1 : 0) + (p.y >= c.y ? 2 : 0);
        quads[qi].sample.push_back(p);
      }
      for (auto& q : quads) regions.push_back(std::move(q));
    }
  }
  std::vector<Box> boxes;
  boxes.reserve(regions.size());
  for (const auto& r : regions) boxes.push_back(r.box);
  return boxes;
}

}  // namespace

ClusterDataset::ClusterDataset(const SpatialDataset* dataset,
                               const ClusterConfig& config)
    : dataset_(dataset) {
  const Box extent = dataset->Bounds();

  // Sample centroids for the partitioner.
  std::mt19937_64 gen(config.seed);
  std::vector<Vec2> sample;
  const size_t n = dataset->size();
  const size_t want = std::min(config.sample_size, n);
  sample.reserve(want);
  for (size_t i = 0; i < want; ++i) {
    sample.push_back(dataset->geoms[gen() % n].Centroid());
  }
  const std::vector<Box> boxes = BuildPartitionBoxes(extent, sample, config);

  partitions_.resize(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) partitions_[i].bounds = boxes[i];

  // Assign each object to every partition its bounds intersect (GeoSpark
  // duplicates boundary-crossing objects; results are deduplicated at the
  // merge). Points land in exactly one partition.
  RTree part_tree = RTree::Build(boxes);
  for (size_t i = 0; i < n; ++i) {
    const Box b = dataset->geoms[i].Bounds();
    bool assigned = false;
    part_tree.Query(b, [&](uint32_t pi) {
      if (dataset->geoms[i].is_point() && assigned) return;
      partitions_[pi].ids.push_back(static_cast<GeomId>(i));
      partitions_[pi].boxes.push_back(b);
      partitions_[pi].bytes += dataset->geoms[i].ByteSize();
      assigned = true;
    });
    if (!assigned) {
      // Degenerate: outside every region (shouldn't happen); put in 0.
      partitions_[0].ids.push_back(static_cast<GeomId>(i));
      partitions_[0].boxes.push_back(b);
      partitions_[0].bytes += dataset->geoms[i].ByteSize();
    }
  }
  for (auto& part : partitions_) {
    part.rtree = RTree::Build(part.boxes);
  }
}

ClusterEngine::ClusterEngine(const ClusterConfig& config)
    : config_(config), pool_(static_cast<size_t>(config.num_nodes)) {}

namespace {

/// Executor-memory model: invoke fn(local_index) for every member of the
/// partition. A partition larger than the node budget is processed in
/// budget-sized chunks, each preceded by a re-materialization (copy) of
/// that chunk's geometry — the spill penalty.
void ForEachMemberWithSpill(const ClusterDataset::Partition& part,
                            const SpatialDataset& dataset, size_t budget,
                            const std::function<void(size_t)>& fn) {
  if (part.bytes <= budget || part.ids.empty()) {
    for (size_t i = 0; i < part.ids.size(); ++i) fn(i);
    return;
  }
  // Spill path: chunk and re-materialize.
  size_t chunk_begin = 0;
  while (chunk_begin < part.ids.size()) {
    size_t bytes = 0;
    size_t chunk_end = chunk_begin;
    while (chunk_end < part.ids.size() && bytes < budget) {
      bytes += dataset.geoms[part.ids[chunk_end]].ByteSize();
      ++chunk_end;
    }
    // Re-materialization: copy the chunk's geometry (spilled block re-read).
    std::vector<Geometry> scratch;
    scratch.reserve(chunk_end - chunk_begin);
    for (size_t i = chunk_begin; i < chunk_end; ++i) {
      scratch.push_back(dataset.geoms[part.ids[i]]);
    }
    for (size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
    chunk_begin = chunk_end;
  }
}

}  // namespace

std::vector<GeomId> ClusterEngine::Select(const ClusterDataset& data,
                                          const MultiPolygon& constraint) const {
  const Box bounds = constraint.Bounds();
  const auto& parts = data.partitions();
  std::mutex mu;
  std::vector<GeomId> result;
  pool_.ParallelFor(parts.size(), [&](size_t lo, size_t hi) {
    std::vector<GeomId> local;
    for (size_t p = lo; p < hi; ++p) {
      const auto& part = parts[p];
      if (!part.bounds.Intersects(bounds)) continue;
      part.rtree.Query(bounds, [&](uint32_t li) {
        const GeomId id = part.ids[li];
        if (GeometryIntersectsPolygon(data.dataset().geoms[id], constraint)) {
          local.push_back(id);
        }
      });
    }
    std::lock_guard<std::mutex> lock(mu);
    result.insert(result.end(), local.begin(), local.end());
  });
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<std::pair<GeomId, GeomId>> ClusterEngine::JoinPolyPoint(
    const ClusterDataset& polys, const ClusterDataset& points) const {
  const auto& parts = points.partitions();
  const auto& poly_ds = polys.dataset();

  // Candidate polygons per point-partition via an index over poly bounds.
  std::vector<Box> poly_boxes;
  poly_boxes.reserve(poly_ds.size());
  for (const auto& g : poly_ds.geoms) poly_boxes.push_back(g.Bounds());
  RTree poly_tree = RTree::Build(poly_boxes);

  std::mutex mu;
  std::vector<std::pair<GeomId, GeomId>> result;
  pool_.ParallelFor(parts.size(), [&](size_t lo, size_t hi) {
    std::vector<std::pair<GeomId, GeomId>> local;
    for (size_t p = lo; p < hi; ++p) {
      const auto& part = parts[p];
      if (part.ids.empty()) continue;
      std::vector<uint32_t> candidates;
      poly_tree.Query(part.bounds, [&](uint32_t pid) {
        candidates.push_back(pid);
      });
      if (candidates.empty()) continue;
      ForEachMemberWithSpill(
          part, points.dataset(), config_.node_memory_budget, [&](size_t li) {
            const GeomId pt_id = part.ids[li];
            const Vec2& pt = points.dataset().geoms[pt_id].point();
            for (uint32_t pid : candidates) {
              if (!poly_boxes[pid].Contains(pt)) continue;
              if (PointInMultiPolygon(poly_ds.geoms[pid].polygon(), pt)) {
                local.emplace_back(pid, pt_id);
              }
            }
          });
    }
    std::lock_guard<std::mutex> lock(mu);
    result.insert(result.end(), local.begin(), local.end());
  });
  return result;
}

std::vector<std::pair<GeomId, GeomId>> ClusterEngine::JoinPolyPoly(
    const ClusterDataset& a, const ClusterDataset& b) const {
  const auto& parts = a.partitions();
  const auto& b_ds = b.dataset();
  std::vector<Box> b_boxes;
  b_boxes.reserve(b_ds.size());
  for (const auto& g : b_ds.geoms) b_boxes.push_back(g.Bounds());
  RTree b_tree = RTree::Build(b_boxes);

  std::mutex mu;
  std::vector<std::pair<GeomId, GeomId>> result;
  pool_.ParallelFor(parts.size(), [&](size_t lo, size_t hi) {
    std::vector<std::pair<GeomId, GeomId>> local;
    for (size_t p = lo; p < hi; ++p) {
      const auto& part = parts[p];
      ForEachMemberWithSpill(
          part, a.dataset(), config_.node_memory_budget, [&](size_t li) {
            const GeomId aid = part.ids[li];
            const Geometry& ag = a.dataset().geoms[aid];
            // Each duplicated copy reports only matches whose intersection
            // could lie in this partition; global dedup below.
            b_tree.Query(part.boxes[li], [&](uint32_t bid) {
              if (MultiPolygonsIntersect(ag.polygon(),
                                         b_ds.geoms[bid].polygon())) {
                local.emplace_back(aid, static_cast<GeomId>(bid));
              }
            });
          });
    }
    std::lock_guard<std::mutex> lock(mu);
    result.insert(result.end(), local.begin(), local.end());
  });
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

std::vector<std::pair<GeomId, GeomId>> ClusterEngine::DistanceJoinPoints(
    const std::vector<Vec2>& probes, const ClusterDataset& points,
    double r) const {
  const auto& parts = points.partitions();
  std::mutex mu;
  std::vector<std::pair<GeomId, GeomId>> result;
  pool_.ParallelFor(probes.size(), [&](size_t lo, size_t hi) {
    std::vector<std::pair<GeomId, GeomId>> local;
    for (size_t q = lo; q < hi; ++q) {
      const Vec2& probe = probes[q];
      const Box query(probe.x - r, probe.y - r, probe.x + r, probe.y + r);
      const double r2 = r * r;
      for (const auto& part : parts) {
        if (!part.bounds.Intersects(query)) continue;
        part.rtree.Query(query, [&](uint32_t li) {
          const GeomId id = part.ids[li];
          if (probe.Distance2To(points.dataset().geoms[id].point()) <= r2) {
            local.emplace_back(static_cast<GeomId>(q), id);
          }
        });
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    result.insert(result.end(), local.begin(), local.end());
  });
  return result;
}

std::vector<std::pair<GeomId, double>> ClusterEngine::KnnSelect(
    const ClusterDataset& points, const Vec2& query, size_t k) const {
  // Visit partitions in order of distance; stop when the kth best beats
  // the next partition's lower bound.
  const auto& parts = points.partitions();
  std::vector<size_t> order(parts.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return parts[a].bounds.DistanceTo(query) < parts[b].bounds.DistanceTo(query);
  });

  std::priority_queue<std::pair<double, GeomId>> best;  // max-heap
  for (size_t pi : order) {
    const auto& part = parts[pi];
    if (best.size() == k &&
        part.bounds.DistanceTo(query) > best.top().first) {
      break;
    }
    part.rtree.VisitNearest(query, [&](uint32_t li, double dist) {
      if (best.size() == k && dist > best.top().first) return false;
      const GeomId id = part.ids[li];
      const double d =
          query.DistanceTo(points.dataset().geoms[id].point());
      if (best.size() < k) {
        best.emplace(d, id);
      } else if (d < best.top().first) {
        best.pop();
        best.emplace(d, id);
      }
      return true;
    });
  }
  std::vector<std::pair<GeomId, double>> result;
  result.reserve(best.size());
  while (!best.empty()) {
    result.emplace_back(best.top().second, best.top().first);
    best.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace spade
