#include "baselines/rtree.h"

#include <algorithm>
#include <cmath>

namespace spade {

RTree RTree::Build(const std::vector<Box>& boxes) {
  RTree tree;
  tree.entry_boxes_ = boxes;
  tree.num_entries_ = boxes.size();
  if (boxes.empty()) return tree;

  // STR: sort by x, slice, sort each slice by y, pack leaves.
  std::vector<uint32_t> order(boxes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return boxes[a].Center().x < boxes[b].Center().x;
  });
  const size_t n = boxes.size();
  const size_t num_leaves = (n + kLeafCapacity - 1) / kLeafCapacity;
  const size_t slices =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(std::sqrt(
                              static_cast<double>(num_leaves)))));
  const size_t per_slice = (n + slices - 1) / slices;
  for (size_t s = 0; s < slices; ++s) {
    const size_t lo = s * per_slice;
    const size_t hi = std::min(n, lo + per_slice);
    if (lo >= hi) break;
    std::sort(order.begin() + lo, order.begin() + hi,
              [&](uint32_t a, uint32_t b) {
                return boxes[a].Center().y < boxes[b].Center().y;
              });
  }

  // Pack leaves.
  std::vector<uint32_t> level;
  for (size_t i = 0; i < n; i += kLeafCapacity) {
    Node leaf;
    leaf.leaf = true;
    for (size_t j = i; j < std::min(n, i + kLeafCapacity); ++j) {
      leaf.children.push_back(order[j]);
      leaf.box.Extend(boxes[order[j]]);
    }
    level.push_back(static_cast<uint32_t>(tree.nodes_.size()));
    tree.nodes_.push_back(std::move(leaf));
  }

  // Pack upper levels until a single root remains.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t i = 0; i < level.size(); i += kFanout) {
      Node node;
      node.leaf = false;
      for (size_t j = i; j < std::min(level.size(), i + kFanout); ++j) {
        node.children.push_back(level[j]);
        node.box.Extend(tree.nodes_[level[j]].box);
      }
      next.push_back(static_cast<uint32_t>(tree.nodes_.size()));
      tree.nodes_.push_back(std::move(node));
    }
    level = std::move(next);
  }
  tree.root_ = static_cast<int32_t>(level[0]);
  return tree;
}

void RTree::Query(const Box& query,
                  const std::function<void(uint32_t)>& fn) const {
  if (root_ < 0) return;
  std::vector<uint32_t> stack = {static_cast<uint32_t>(root_)};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.Intersects(query)) continue;
    if (node.leaf) {
      for (uint32_t id : node.children) {
        if (entry_boxes_[id].Intersects(query)) fn(id);
      }
    } else {
      for (uint32_t child : node.children) {
        if (nodes_[child].box.Intersects(query)) stack.push_back(child);
      }
    }
  }
}

void RTree::VisitNearest(
    const Vec2& p, const std::function<bool(uint32_t, double)>& fn) const {
  if (root_ < 0) return;
  // Heap over (distance, is_entry, index).
  struct Item {
    double dist;
    bool entry;
    uint32_t index;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  heap.push({nodes_[root_].box.DistanceTo(p), false,
             static_cast<uint32_t>(root_)});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    if (item.entry) {
      if (!fn(item.index, item.dist)) return;
      continue;
    }
    const Node& node = nodes_[item.index];
    if (node.leaf) {
      for (uint32_t id : node.children) {
        heap.push({entry_boxes_[id].DistanceTo(p), true, id});
      }
    } else {
      for (uint32_t child : node.children) {
        heap.push({nodes_[child].box.DistanceTo(p), false, child});
      }
    }
  }
}

}  // namespace spade
