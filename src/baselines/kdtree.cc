#include "baselines/kdtree.h"

#include <algorithm>
#include <queue>

namespace spade {

BlockKdTree BlockKdTree::Build(const std::vector<Vec2>& points,
                               int leaf_size) {
  BlockKdTree tree;
  if (points.empty()) return tree;
  std::vector<uint32_t> order(points.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  tree.points_.reserve(points.size());
  tree.ids_.reserve(points.size());
  tree.root_ = tree.BuildRec(order, 0, static_cast<uint32_t>(order.size()),
                             points, leaf_size);
  return tree;
}

int32_t BlockKdTree::BuildRec(std::vector<uint32_t>& order, uint32_t lo,
                              uint32_t hi, const std::vector<Vec2>& pts,
                              int leaf_size) {
  Box box;
  for (uint32_t i = lo; i < hi; ++i) box.Extend(pts[order[i]]);

  if (hi - lo <= static_cast<uint32_t>(leaf_size)) {
    Leaf leaf;
    leaf.box = box;
    leaf.begin = static_cast<uint32_t>(points_.size());
    for (uint32_t i = lo; i < hi; ++i) {
      points_.push_back(pts[order[i]]);
      ids_.push_back(order[i]);
    }
    leaf.end = static_cast<uint32_t>(points_.size());
    const int32_t leaf_idx = static_cast<int32_t>(leaves_.size());
    leaves_.push_back(leaf);
    Node node;
    node.box = box;
    node.leaf = leaf_idx;
    nodes_.push_back(node);
    return static_cast<int32_t>(nodes_.size() - 1);
  }

  const bool split_x = box.Width() >= box.Height();
  const uint32_t mid = lo + (hi - lo) / 2;
  std::nth_element(order.begin() + lo, order.begin() + mid,
                   order.begin() + hi, [&](uint32_t a, uint32_t b) {
                     return split_x ? pts[a].x < pts[b].x : pts[a].y < pts[b].y;
                   });
  const int32_t left = BuildRec(order, lo, mid, pts, leaf_size);
  const int32_t right = BuildRec(order, mid, hi, pts, leaf_size);
  Node node;
  node.box = box;
  node.left = left;
  node.right = right;
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size() - 1);
}

void BlockKdTree::CollectLeaves(
    const Box& query, const std::function<void(const Leaf&)>& fn) const {
  if (root_ < 0) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.Intersects(query)) continue;
    if (node.leaf >= 0) {
      fn(leaves_[node.leaf]);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
}

void BlockKdTree::RangeQuery(
    const Box& query,
    const std::function<void(uint32_t, const Vec2&)>& fn) const {
  CollectLeaves(query, [&](const Leaf& leaf) {
    for (uint32_t i = leaf.begin; i < leaf.end; ++i) {
      if (query.Contains(points_[i])) fn(ids_[i], points_[i]);
    }
  });
}

void BlockKdTree::RadiusQuery(
    const Vec2& p, double r,
    const std::function<void(uint32_t, const Vec2&)>& fn) const {
  const Box query(p.x - r, p.y - r, p.x + r, p.y + r);
  const double r2 = r * r;
  CollectLeaves(query, [&](const Leaf& leaf) {
    for (uint32_t i = leaf.begin; i < leaf.end; ++i) {
      if (p.Distance2To(points_[i]) <= r2) fn(ids_[i], points_[i]);
    }
  });
}

std::vector<std::pair<uint32_t, double>> BlockKdTree::KNearest(
    const Vec2& p, size_t k) const {
  std::vector<std::pair<uint32_t, double>> result;
  if (root_ < 0 || k == 0) return result;

  struct Item {
    double dist;
    int32_t node;
    bool operator>(const Item& o) const { return dist > o.dist; }
  };
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
  // Max-heap of current best (distance, id).
  std::priority_queue<std::pair<double, uint32_t>> best;

  heap.push({nodes_[root_].box.DistanceTo(p), root_});
  while (!heap.empty()) {
    const Item item = heap.top();
    heap.pop();
    if (best.size() == k && item.dist > best.top().first) break;
    const Node& node = nodes_[item.node];
    if (node.leaf >= 0) {
      const Leaf& leaf = leaves_[node.leaf];
      for (uint32_t i = leaf.begin; i < leaf.end; ++i) {
        const double d = p.DistanceTo(points_[i]);
        if (best.size() < k) {
          best.emplace(d, ids_[i]);
        } else if (d < best.top().first) {
          best.pop();
          best.emplace(d, ids_[i]);
        }
      }
    } else {
      heap.push({nodes_[node.left].box.DistanceTo(p), node.left});
      heap.push({nodes_[node.right].box.DistanceTo(p), node.right});
    }
  }
  result.reserve(best.size());
  while (!best.empty()) {
    result.emplace_back(best.top().second, best.top().first);
    best.pop();
  }
  std::reverse(result.begin(), result.end());
  return result;
}

}  // namespace spade
