// STIG-like index [12]: the specialized-GPU-baseline of the paper's
// evaluation. A kd-tree whose leaves are large blocks (default 4096
// points, the paper's tuned value); a polygonal selection filters leaf
// blocks through the tree and then scans the surviving blocks in parallel
// with exact point-in-polygon tests — the block scan is the part STIG runs
// as a CUDA kernel, emulated here by the worker pool. Point data only.
#pragma once

#include <vector>

#include "baselines/kdtree.h"
#include "common/thread_pool.h"
#include "geom/geometry.h"

namespace spade {

/// \brief STIG-style block kd-tree over points.
class StigIndex {
 public:
  StigIndex(std::vector<Vec2> points, ThreadPool* pool, int leaf_size = 4096);

  size_t size() const { return points_.size(); }
  size_t num_leaf_blocks() const { return tree_.num_leaves(); }

  /// Ids of points intersecting the polygon. Filter: tree traversal over
  /// the polygon's bounds; refine: parallel block scans with exact tests.
  std::vector<uint32_t> PolygonSelect(const MultiPolygon& poly) const;

  /// Rectangular range variant.
  std::vector<uint32_t> RangeSelect(const Box& box) const;

 private:
  std::vector<Vec2> points_;
  BlockKdTree tree_;
  ThreadPool* pool_;
};

}  // namespace spade
