// GeoSpark-like cluster engine: the map-reduce baseline of the paper's
// evaluation (Section 6.1, group 4). A dataset becomes a partitioned
// "SpatialRDD": a KDB-tree or quadtree spatial partitioning built from a
// sample, objects duplicated into every partition they overlap, and an
// R-tree per partition. Queries run partition-parallel on `num_nodes`
// worker threads (the cluster's compute nodes) with filter + exact-refine
// per partition and a result merge (the shuffle).
//
// Spill modelling: GeoSpark's join throughput degrades once partitions
// outgrow executor memory (the paper's Fig. 6 slope change past ~1B
// points). We model executor memory with `node_memory_budget`: a partition
// larger than the budget is processed in chunks, each of which must be
// re-materialized (copied) first, exactly like spilled blocks re-read
// during the probe phase.
#pragma once

#include <memory>
#include <vector>

#include "baselines/rtree.h"
#include "common/thread_pool.h"
#include "geom/geometry.h"
#include "storage/dataset.h"

namespace spade {

/// \brief Tuning knobs of the simulated cluster (see Section 6.1's
/// "Database Setup and Tuning" — partition count and strategy are the
/// parameters the paper sweeps to tune GeoSpark).
struct ClusterConfig {
  enum class Partitioning { kKdb, kQuad };

  int num_nodes = 8;            ///< worker threads = cluster nodes
  int num_partitions = 64;      ///< target SpatialRDD partition count
  Partitioning partitioning = Partitioning::kKdb;
  size_t node_memory_budget = 64ull << 20;  ///< bytes per partition in memory
  size_t sample_size = 4096;    ///< sample used to build the partitioning
  uint64_t seed = 1;
};

/// \brief A partitioned, per-partition-indexed dataset (a "SpatialRDD").
class ClusterDataset {
 public:
  /// Partition `dataset` (which must outlive this object).
  ClusterDataset(const SpatialDataset* dataset, const ClusterConfig& config);

  struct Partition {
    Box bounds;                  ///< partition region
    std::vector<GeomId> ids;     ///< members (boundary objects duplicated)
    std::vector<Box> boxes;      ///< member bounds, parallel to ids
    RTree rtree;                 ///< local index
    size_t bytes = 0;            ///< payload size for spill modelling
  };

  const SpatialDataset& dataset() const { return *dataset_; }
  const std::vector<Partition>& partitions() const { return partitions_; }

 private:
  const SpatialDataset* dataset_;
  std::vector<Partition> partitions_;
};

/// \brief Partition-parallel query execution over ClusterDatasets.
class ClusterEngine {
 public:
  explicit ClusterEngine(const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }

  /// Spatial selection: ids of objects intersecting the polygon.
  std::vector<GeomId> Select(const ClusterDataset& data,
                             const MultiPolygon& constraint) const;

  /// Polygon x point join: (polygon id, point id) pairs.
  std::vector<std::pair<GeomId, GeomId>> JoinPolyPoint(
      const ClusterDataset& polys, const ClusterDataset& points) const;

  /// Polygon x polygon join.
  std::vector<std::pair<GeomId, GeomId>> JoinPolyPoly(
      const ClusterDataset& a, const ClusterDataset& b) const;

  /// Distance join between a small probe point set and a point dataset:
  /// (probe index, point id) pairs with distance <= r.
  std::vector<std::pair<GeomId, GeomId>> DistanceJoinPoints(
      const std::vector<Vec2>& probes, const ClusterDataset& points,
      double r) const;

  /// kNN selection over a point dataset.
  std::vector<std::pair<GeomId, double>> KnnSelect(
      const ClusterDataset& points, const Vec2& query, size_t k) const;

 private:
  ClusterConfig config_;
  mutable ThreadPool pool_;
};

}  // namespace spade
