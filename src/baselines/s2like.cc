#include "baselines/s2like.h"

#include "geom/predicates.h"

namespace spade {

S2LikePointIndex::S2LikePointIndex(std::vector<Vec2> points)
    : points_(std::move(points)) {
  tree_ = BlockKdTree::Build(points_, /*leaf_size=*/64);
}

std::vector<uint32_t> S2LikePointIndex::SelectInPolygon(
    const MultiPolygon& poly) const {
  std::vector<uint32_t> result;
  tree_.RangeQuery(poly.Bounds(), [&](uint32_t id, const Vec2& p) {
    if (PointInMultiPolygon(poly, p)) result.push_back(id);
  });
  return result;
}

std::vector<uint32_t> S2LikePointIndex::WithinDistance(const Vec2& p,
                                                       double r) const {
  std::vector<uint32_t> result;
  tree_.RadiusQuery(p, r, [&](uint32_t id, const Vec2&) {
    result.push_back(id);
  });
  return result;
}

std::vector<uint32_t> S2LikePointIndex::WithinDistanceOfGeometry(
    const Geometry& g, double r) const {
  std::vector<uint32_t> result;
  const Box query = g.Bounds().Expanded(r);
  tree_.RangeQuery(query, [&](uint32_t id, const Vec2& p) {
    if (PointGeometryDistance(g, p) <= r) result.push_back(id);
  });
  return result;
}

std::vector<std::pair<uint32_t, double>> S2LikePointIndex::KNearest(
    const Vec2& p, size_t k) const {
  return tree_.KNearest(p, k);
}

S2LikeShapeIndex::S2LikeShapeIndex(const std::vector<Geometry>* shapes)
    : shapes_(shapes) {
  std::vector<Box> boxes;
  boxes.reserve(shapes->size());
  for (const auto& g : *shapes) boxes.push_back(g.Bounds());
  rtree_ = RTree::Build(boxes);
}

std::vector<uint32_t> S2LikeShapeIndex::SelectIntersecting(
    const MultiPolygon& poly) const {
  std::vector<uint32_t> result;
  rtree_.Query(poly.Bounds(), [&](uint32_t id) {
    if (GeometryIntersectsPolygon((*shapes_)[id], poly)) {
      result.push_back(id);
    }
  });
  return result;
}

std::vector<std::pair<uint32_t, uint32_t>> S2LikeShapeIndex::JoinPoints(
    const S2LikePointIndex& points) const {
  std::vector<std::pair<uint32_t, uint32_t>> result;
  // For each shape, range-query the point tree on its bounds and refine.
  for (uint32_t sid = 0; sid < shapes_->size(); ++sid) {
    const Geometry& shape = (*shapes_)[sid];
    if (!shape.is_polygon()) continue;
    const auto ids = points.SelectInPolygon(shape.polygon());
    for (uint32_t pid : ids) result.emplace_back(sid, pid);
  }
  return result;
}

std::vector<std::pair<uint32_t, uint32_t>> S2LikeShapeIndex::JoinShapes(
    const S2LikeShapeIndex& other) const {
  std::vector<std::pair<uint32_t, uint32_t>> result;
  for (uint32_t sid = 0; sid < shapes_->size(); ++sid) {
    const Geometry& shape = (*shapes_)[sid];
    if (!shape.is_polygon()) continue;
    other.rtree_.Query(shape.Bounds(), [&](uint32_t oid) {
      const Geometry& og = (*other.shapes_)[oid];
      if (og.is_polygon() &&
          MultiPolygonsIntersect(shape.polygon(), og.polygon())) {
        result.emplace_back(sid, oid);
      }
    });
  }
  return result;
}

}  // namespace spade
