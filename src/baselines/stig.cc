#include "baselines/stig.h"

#include <mutex>

#include "geom/predicates.h"

namespace spade {

StigIndex::StigIndex(std::vector<Vec2> points, ThreadPool* pool,
                     int leaf_size)
    : points_(std::move(points)), pool_(pool) {
  tree_ = BlockKdTree::Build(points_, leaf_size);
}

std::vector<uint32_t> StigIndex::PolygonSelect(const MultiPolygon& poly) const {
  // Filter: collect candidate leaf blocks.
  std::vector<BlockKdTree::Leaf> blocks;
  tree_.CollectLeaves(poly.Bounds(),
                      [&](const BlockKdTree::Leaf& l) { blocks.push_back(l); });

  // Refine: scan blocks in parallel (the CUDA kernel in real STIG).
  const auto& pts = tree_.points();
  const auto& ids = tree_.ids();
  const Box bounds = poly.Bounds();
  std::mutex mu;
  std::vector<uint32_t> result;
  pool_->ParallelFor(blocks.size(), [&](size_t lo, size_t hi) {
    std::vector<uint32_t> local;
    for (size_t b = lo; b < hi; ++b) {
      for (uint32_t i = blocks[b].begin; i < blocks[b].end; ++i) {
        if (bounds.Contains(pts[i]) && PointInMultiPolygon(poly, pts[i])) {
          local.push_back(ids[i]);
        }
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    result.insert(result.end(), local.begin(), local.end());
  });
  return result;
}

std::vector<uint32_t> StigIndex::RangeSelect(const Box& box) const {
  std::vector<BlockKdTree::Leaf> blocks;
  tree_.CollectLeaves(box,
                      [&](const BlockKdTree::Leaf& l) { blocks.push_back(l); });
  const auto& pts = tree_.points();
  const auto& ids = tree_.ids();
  std::mutex mu;
  std::vector<uint32_t> result;
  pool_->ParallelFor(blocks.size(), [&](size_t lo, size_t hi) {
    std::vector<uint32_t> local;
    for (size_t b = lo; b < hi; ++b) {
      for (uint32_t i = blocks[b].begin; i < blocks[b].end; ++i) {
        if (box.Contains(pts[i])) local.push_back(ids[i]);
      }
    }
    std::lock_guard<std::mutex> lock(mu);
    result.insert(result.end(), local.begin(), local.end());
  });
  return result;
}

}  // namespace spade
