// An STR (sort-tile-recursive) bulk-loaded R-tree over bounding boxes.
// Backbone of the S2-like shape index and of the per-partition indexes of
// the cluster baseline (GeoSpark builds an R-tree per RDD partition).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "geom/vec2.h"

namespace spade {

/// \brief Static R-tree over (box, id) entries, STR bulk load.
class RTree {
 public:
  static constexpr int kLeafCapacity = 16;
  static constexpr int kFanout = 16;

  RTree() = default;

  /// Bulk-load from boxes; entry i gets id i.
  static RTree Build(const std::vector<Box>& boxes);

  size_t size() const { return num_entries_; }
  bool empty() const { return num_entries_ == 0; }

  /// Invoke fn(id) for every entry whose box intersects `query`.
  void Query(const Box& query, const std::function<void(uint32_t)>& fn) const;

  /// Invoke fn(id, box) in non-decreasing order of box distance to `p`
  /// until fn returns false (best-first incremental nearest neighbours).
  void VisitNearest(const Vec2& p,
                    const std::function<bool(uint32_t, double)>& fn) const;

  /// Number of nodes (for tests / introspection).
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Box box;
    bool leaf = true;
    // Children: node indices for internal nodes, entry ids for leaves.
    std::vector<uint32_t> children;
  };

  std::vector<Node> nodes_;
  std::vector<Box> entry_boxes_;
  int32_t root_ = -1;
  size_t num_entries_ = 0;
};

}  // namespace spade
