// The batched multi-query scheduler (ISSUE 7): sits between SpadeService
// admission and the engine. Admitted batchable queries over the same
// dataset rendezvous for a short adaptive gather window; when the
// pass-count cost model says sharing pays (k queries touching one cell =>
// one dataset draw + k cheap mask/blend tests instead of k full draws),
// the group leader executes one shared rasterization pass per cell and
// fans the per-query results out of it. Queries that share nothing fall
// back to solo execution (same per-cell loop, one member) so batching
// never changes results and never multiplies passes for disjoint work.
//
// Composition with the existing rails:
//   * per-query CancelToken checks at cell boundaries inside shared
//     passes — a cancelled member leaves the batch with its typed status
//     without poisoning the other members (the shared draw installs NO
//     CancelScope, so the device's fast-out cannot fire for one member's
//     token while others still need the fragments);
//   * deadline-aware window sizing — the gather window never extends past
//     a fraction of the earliest member's remaining deadline budget;
//   * device-slot arbitration — a shared pass occupies ONE device slot
//     for the whole group (that is the throughput win);
//   * per-batch spans — every member's profile gets a `batch` node with
//     members/shared_draws/saved_passes args, surfaced by EXPLAIN ANALYZE.
//
// Result reuse: a ResultCache keyed (dataset uid, cell, query-shape
// signature) memoizes per-cell result ids, so repeated identical or
// overlapping queries skip the draw for cached cells entirely.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "batch/result_cache.h"
#include "canvas/canvas.h"
#include "canvas/operators.h"
#include "common/semaphore.h"
#include "engine/spade.h"
#include "service/request.h"

namespace spade {
namespace batch {

/// Query-shape signature: FNV-1a over everything that determines the
/// per-cell result set of a batchable request (kind, projection, constraint
/// geometry bits). The result cache keys on it; the statement store mixes
/// in dataset names on top (see wire::StatementFingerprint). Stable across
/// processes — it hashes only values, never pointers.
uint64_t QueryShapeSignature(const Request& req, bool mercator);

/// \brief Sizing knobs of the batch scheduler.
struct BatchConfig {
  /// Maximum gather window in milliseconds. The effective window adapts:
  /// it halves after a group that found nothing to share (down to 1/32 of
  /// the configured value) and snaps back to the configured maximum after
  /// a group that did — so no-sharing workloads pay microseconds, not the
  /// full window, while bursty duplicate traffic keeps gathering.
  double window_ms = 2.0;
  /// A group closes immediately once this many members have gathered.
  size_t max_members = 8;
  /// Byte budget of the per-cell result cache (0 disables it).
  size_t cache_bytes = 32ull << 20;
  /// Fraction of a member's remaining deadline the window may consume.
  double deadline_fraction = 0.25;
};

/// \brief The multi-query batch scheduler and shared-pass executor.
///
/// Thread-safe: every service worker calls Execute() concurrently; the
/// scheduler groups the callers itself.
class BatchScheduler {
 public:
  /// `engine` and `device_slots` are borrowed from the owning service and
  /// must outlive the scheduler. Shared and solo executions acquire
  /// device slots from `device_slots` exactly like ungrouped queries do.
  BatchScheduler(SpadeEngine* engine, Semaphore* device_slots,
                 BatchConfig config);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Try to run `req` through the batcher. Returns true when the request
  /// was handled and `*resp` is filled (OK or a typed error); false means
  /// the caller must run the normal solo path (non-batchable kind or
  /// shape). Blocks for at most the gather window plus execution time.
  bool Execute(const Request& req, CellSource& src, const QueryOptions& opts,
               Response* resp);

  /// True for request kinds/shapes the scheduler can take. Mirrors the
  /// checks Execute() performs before committing to a group.
  static bool Batchable(const Request& req, const CellSource& src,
                        const QueryOptions& opts);

  ResultCache& cache() { return cache_; }

  /// Invalidation hook: drop every cached result of dataset `uid`
  /// (source contents replaced / reloaded).
  void InvalidateSource(uint64_t uid) { cache_.InvalidateSource(uid); }

  /// Targeted invalidation: drop cached results of the named cells only
  /// (the streaming-ingest append/merge hook).
  void InvalidateCells(uint64_t uid, const std::vector<size_t>& cells) {
    cache_.InvalidateCells(uid, cells);
  }

  /// Stop gathering: open groups close immediately and future groups use
  /// a zero window (members still execute). Called on service shutdown.
  void Shutdown();

  /// Current adaptive gather window, seconds (test/observability hook).
  double window_seconds() const;

 private:
  struct Member;
  struct Group;

  /// Build the member's query plan (constraint canvas, candidate cells,
  /// shape signature) on the caller's thread. False = shape unsupported.
  bool PlanMember(const Request& req, CellSource& src,
                  const QueryOptions& opts, Member* m);

  /// Run the rendezvous for `m`: join/create the group for its dataset,
  /// gather, partition, and leave with m's results or typed status set.
  void Rendezvous(Member* m);

  /// Execute `members` (>= 1) against their common dataset under one
  /// device slot: per union cell, cache probes, one prepared-cell load,
  /// and one shared draw testing every active member's canvas.
  void ExecuteMembers(const std::vector<Member*>& members);

  /// Record a closed group into the adaptive window + metrics.
  void NoteGroupOutcome(size_t members, bool shared_anything);

  SpadeEngine* engine_;
  Semaphore* device_slots_;
  const BatchConfig config_;
  ResultCache cache_;

  mutable std::mutex mu_;
  /// Open gather groups by (dataset uid, snapshot epoch): two queries over
  /// the same mutable dataset pinned at different epochs must never share
  /// a group — the shared pass loads cells through one member's source.
  std::map<std::pair<uint64_t, uint64_t>, std::shared_ptr<Group>> open_;
  bool stopping_ = false;
  /// Adaptive window, microseconds (guarded by mu_).
  int64_t window_us_ = 0;
};

}  // namespace batch
}  // namespace spade
