#include "batch/result_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace spade {
namespace batch {
namespace {

obs::Counter& CacheHits() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_result_cache_hits_total");
  return *c;
}
obs::Counter& CacheMisses() {
  static obs::Counter* c = obs::MetricsRegistry::Global().counter(
      "spade_result_cache_misses_total");
  return *c;
}
obs::Counter& CacheEvictedBytes() {
  static obs::Counter* c = obs::MetricsRegistry::Global().counter(
      "spade_result_cache_evicted_bytes_total");
  return *c;
}
obs::Gauge& CacheBytes() {
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().gauge("spade_result_cache_bytes");
  return *g;
}
obs::Counter& CacheInvalidations() {
  static obs::Counter* c = obs::MetricsRegistry::Global().counter(
      "spade_result_cache_invalidations_total");
  return *c;
}

}  // namespace

bool ResultCache::Lookup(uint64_t uid, size_t cell, uint64_t version,
                         uint64_t signature, std::vector<uint32_t>* out) {
  if (budget_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(Key{uid, cell, version, signature});
  if (it == entries_.end()) {
    CacheMisses().Add();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  *out = it->second.ids;
  CacheHits().Add();
  return true;
}

void ResultCache::Insert(uint64_t uid, size_t cell, uint64_t version,
                         uint64_t signature, const std::vector<uint32_t>& ids) {
  if (budget_ == 0) return;
  const size_t cost = EntryBytes(ids);
  if (cost > budget_) return;
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{uid, cell, version, signature};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  lru_.push_front(key);
  Entry e;
  e.ids = ids;
  e.bytes = cost;
  e.lru_it = lru_.begin();
  entries_.emplace(key, std::move(e));
  bytes_ += cost;
  EvictIfNeededLocked();
  CacheBytes().Set(static_cast<int64_t>(bytes_));
}

void ResultCache::EvictIfNeededLocked() {
  while (bytes_ > budget_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    CacheEvictedBytes().Add(static_cast<int64_t>(it->second.bytes));
    entries_.erase(it);
  }
}

void ResultCache::InvalidateSource(uint64_t uid) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.uid == uid) {
      bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) CacheInvalidations().Add(dropped);
  CacheBytes().Set(static_cast<int64_t>(bytes_));
}

void ResultCache::InvalidateCells(uint64_t uid,
                                  const std::vector<size_t>& cells) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool match = it->first.uid == uid &&
                       std::find(cells.begin(), cells.end(), it->first.cell) !=
                           cells.end();
    if (match) {
      bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) CacheInvalidations().Add(dropped);
  CacheBytes().Set(static_cast<int64_t>(bytes_));
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  CacheBytes().Set(0);
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace batch
}  // namespace spade
