#include "batch/batch.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/stopwatch.h"
#include "engine/exec.h"
#include "geom/projection.h"
#include "geom/triangulate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace spade {
namespace batch {

namespace {

obs::Counter& BatchTotal() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_batch_total");
  return *c;
}
obs::Histogram& BatchMembersHist() {
  static obs::Histogram* h = obs::MetricsRegistry::Global().histogram(
      "spade_batch_members", /*first_upper=*/1.0);
  return *h;
}
obs::Counter& SharedDrawsTotal() {
  static obs::Counter* c = obs::MetricsRegistry::Global().counter(
      "spade_batch_shared_draws_total");
  return *c;
}
obs::Counter& SavedPassesTotal() {
  static obs::Counter* c = obs::MetricsRegistry::Global().counter(
      "spade_batch_saved_passes_total");
  return *c;
}
obs::Gauge& SlotsBusyGauge() {
  // Same named series the service increments for ungrouped queries, so
  // slot occupancy stays one gauge regardless of which path ran.
  static obs::Gauge* g =
      obs::MetricsRegistry::Global().gauge("spade_service_device_slots_busy");
  return *g;
}

/// RAII +1/-1 on a gauge (balanced across every exit path).
struct GaugeOccupancy {
  explicit GaugeOccupancy(obs::Gauge* g) : g_(g) { g_->Add(1); }
  ~GaugeOccupancy() { g_->Add(-1); }
  GaugeOccupancy(const GaugeOccupancy&) = delete;
  GaugeOccupancy& operator=(const GaugeOccupancy&) = delete;
  obs::Gauge* g_;
};

uint64_t HashMix(uint64_t h, uint64_t v) {
  // FNV-1a over the value's 8 bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashDouble(uint64_t h, double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d), "double must be 64-bit");
  std::memcpy(&bits, &d, sizeof(bits));
  return HashMix(h, bits);
}

uint64_t HashVec(uint64_t h, const Vec2& v) {
  return HashDouble(HashDouble(h, v.x), v.y);
}

/// Query-shape signature: everything that determines the per-cell result
/// set of a batchable request (kind, projection, constraint geometry bits).
uint64_t ShapeSignature(const Request& req, bool mercator) {
  uint64_t h = 1469598103934665603ull;
  h = HashMix(h, static_cast<uint64_t>(req.kind));
  h = HashMix(h, mercator ? 1 : 0);
  switch (req.kind) {
    case RequestKind::kSelection:
    case RequestKind::kContains:
      for (const auto& part : req.constraint.parts) {
        h = HashMix(h, 0x70);  // part separator
        for (const auto& v : part.outer) h = HashVec(h, v);
        for (const auto& hole : part.holes) {
          h = HashMix(h, 0x68);  // hole separator
          for (const auto& v : hole) h = HashVec(h, v);
        }
      }
      break;
    case RequestKind::kRange:
      h = HashVec(h, req.range.min);
      h = HashVec(h, req.range.max);
      break;
    case RequestKind::kDistance:
      h = HashVec(h, req.point);
      h = HashDouble(h, req.radius);
      break;
    default:
      break;
  }
  return h;
}

/// Do two ascending candidate-cell lists intersect?
bool CellsIntersect(const std::vector<size_t>& a, const std::vector<size_t>& b) {
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

uint64_t QueryShapeSignature(const Request& req, bool mercator) {
  return ShapeSignature(req, mercator);
}

/// One admitted query inside the scheduler. Lives on its caller's stack:
/// the member stays blocked in Rendezvous() until `released`, so pointers
/// to it held by the group/leader stay valid.
struct BatchScheduler::Member {
  const Request* req = nullptr;
  CellSource* src = nullptr;
  CancelToken* cancel = nullptr;
  uint64_t uid = 0;
  uint64_t epoch = 0;  ///< snapshot epoch (0 for frozen sources)

  // Plan (built on the member's own thread before rendezvous).
  Canvas canvas;
  Box view;    ///< canvas.viewport().world()
  Box bounds;  ///< constraint bounds (FilterCells / containment test)
  GeometricTransform transform = GeometricTransform::Identity();
  bool identity = true;
  bool distance_mode = false;
  bool contains = false;
  std::vector<size_t> cells;  ///< candidate cells, ascending
  uint64_t signature = 0;

  // Outcome.
  Status status;            ///< typed failure; OK = `ids` is the answer
  std::vector<GeomId> ids;  ///< raw matches (sorted + deduped at finalize)
  QueryStats stats;
  int64_t cache_hits = 0;

  // Rendezvous state (guarded by the scheduler mutex).
  bool released = false;
  bool needs_solo = false;  ///< run ExecuteMembers({this}) on own thread
  int64_t group_members = 1;
  int64_t shared_draws = 0;
  int64_t saved_passes = 0;
};

/// One gather window's worth of members over one dataset.
struct BatchScheduler::Group {
  std::vector<Member*> members;
  std::chrono::steady_clock::time_point close_at;
  bool closed_by_size = false;
  std::condition_variable cv;
};

BatchScheduler::BatchScheduler(SpadeEngine* engine, Semaphore* device_slots,
                               BatchConfig config)
    : engine_(engine),
      device_slots_(device_slots),
      config_(config),
      cache_(config.cache_bytes),
      window_us_(static_cast<int64_t>(config.window_ms * 1000.0)) {}

BatchScheduler::~BatchScheduler() { Shutdown(); }

void BatchScheduler::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  stopping_ = true;
  for (auto& [key, g] : open_) g->cv.notify_all();
}

double BatchScheduler::window_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(window_us_) / 1e6;
}

bool BatchScheduler::Batchable(const Request& req, const CellSource& src,
                               const QueryOptions& opts) {
  if (opts.id_filter) return false;  // relational filter: solo path only
  switch (req.kind) {
    case RequestKind::kSelection:
    case RequestKind::kContains:
    case RequestKind::kRange:
      return true;
    case RequestKind::kDistance:
      // The engine supports distance selection over point data only; let
      // the solo path produce its NotSupported error for anything else.
      return src.primary_type() == GeomType::kPoint;
    default:
      return false;
  }
}

bool BatchScheduler::Execute(const Request& req, CellSource& src,
                             const QueryOptions& opts, Response* resp) {
  if (!Batchable(req, src, opts)) return false;

  Member m;
  m.req = &req;
  m.src = &src;
  m.cancel = opts.cancel;
  m.uid = src.uid();
  m.epoch = src.snapshot_epoch();

  SPADE_TRACE_SPAN_VAR(batch_span, "batch");
  if (m.cancel != nullptr) {
    const Status pre = m.cancel->Check();
    if (!pre.ok()) {
      resp->status = pre;
      return true;
    }
  }
  if (!PlanMember(req, src, opts, &m)) return false;

  Rendezvous(&m);

  // Finalize on the member's own thread: a tripped token must never
  // return OK, even if every cell it needed came out of the cache.
  if (m.status.ok() && m.cancel != nullptr) m.status = m.cancel->Check();
  if (m.status.ok()) {
    SPADE_TRACE_SPAN_VAR(rb_span, "engine.readback");
    std::sort(m.ids.begin(), m.ids.end());
    m.ids.erase(std::unique(m.ids.begin(), m.ids.end()), m.ids.end());
    rb_span.AddArg("results", static_cast<int64_t>(m.ids.size()));
    m.stats.exact_tests += m.canvas.boundary_index().exact_tests();
    resp->ids = std::move(m.ids);
    resp->stats = m.stats;
  } else {
    resp->status = m.status;
  }
  batch_span.AddArg("members", m.group_members);
  batch_span.AddArg("shared_draws", m.shared_draws);
  batch_span.AddArg("saved_passes", m.saved_passes);
  batch_span.AddArg("cache_hits", m.cache_hits);
  return true;
}

bool BatchScheduler::PlanMember(const Request& req, CellSource& src,
                                const QueryOptions& opts, Member* m) {
  Stopwatch plan_sw;
  switch (req.kind) {
    case RequestKind::kSelection:
    case RequestKind::kContains: {
      m->bounds = req.constraint.Bounds();
      const Viewport vp = engine_->MakeViewport(m->bounds);
      CanvasBuilder b(&engine_->device(), vp);
      m->canvas = [&] {
        SPADE_TRACE_SPAN("engine.constraint_prepare");
        const Triangulation tri = Triangulate(req.constraint);
        return b.BuildPolygonCanvas({0}, {&req.constraint}, {&tri});
      }();
      m->contains = req.kind == RequestKind::kContains;
      m->stats.polygon_seconds += plan_sw.ElapsedSeconds();
      m->cells = engine_->FilterCells(src, m->canvas, m->bounds, &m->stats);
      break;
    }
    case RequestKind::kRange: {
      m->bounds = req.range;
      const Viewport vp = engine_->MakeViewport(m->bounds);
      CanvasBuilder b(&engine_->device(), vp);
      m->canvas = [&] {
        SPADE_TRACE_SPAN("engine.constraint_prepare");
        return b.BuildBoxCanvas(0, req.range);
      }();
      m->stats.polygon_seconds += plan_sw.ElapsedSeconds();
      m->cells = engine_->FilterCells(src, m->canvas, m->bounds, &m->stats);
      break;
    }
    case RequestKind::kDistance: {
      const Geometry probe(req.point);
      const Geometry g =
          opts.mercator ? ProjectToWebMercator(probe) : probe;
      m->bounds = g.Bounds().Expanded(req.radius);
      m->transform = GeometricTransform{opts.mercator, 1, 1, 0, 0};
      m->identity = !opts.mercator;
      m->distance_mode = true;
      m->stats.polygon_seconds += plan_sw.ElapsedSeconds();
      const Viewport vp = engine_->MakeViewport(m->bounds);
      CanvasBuilder b(&engine_->device(), vp);
      Stopwatch canvas_sw;
      m->canvas = [&] {
        SPADE_TRACE_SPAN("engine.constraint_prepare");
        return b.BuildDistanceCanvasGeometries({0}, {&g}, {req.radius});
      }();
      // The solo distance path books canvas construction as GPU time.
      m->stats.gpu_seconds += canvas_sw.ElapsedSeconds();
      for (size_t dc = 0; dc < src.index().cells.size(); ++dc) {
        const Box cell_box =
            opts.mercator
                ? exec::TransformBox(src.index().cells[dc].box, m->transform)
                : src.index().cells[dc].box;
        if (cell_box.Intersects(m->bounds)) m->cells.push_back(dc);
      }
      break;
    }
    default:
      return false;
  }
  m->view = m->canvas.viewport().world();
  m->stats.cells_processed += static_cast<int64_t>(m->cells.size());
  m->signature = ShapeSignature(req, opts.mercator);
  return true;
}

void BatchScheduler::Rendezvous(Member* m) {
  std::shared_ptr<Group> g;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    // Deadline-aware window: never gather past a fraction of this
    // member's remaining budget (and not at all once stopping).
    double cap_s = stopping_ ? 0.0 : static_cast<double>(window_us_) / 1e6;
    if (m->cancel != nullptr) {
      const double remaining = m->cancel->SecondsRemaining();
      if (std::isfinite(remaining)) {
        cap_s = std::min(cap_s,
                         std::max(0.0, remaining * config_.deadline_fraction));
      }
    }
    const auto cap = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(cap_s));

    const auto group_key = std::make_pair(m->uid, m->epoch);
    auto it = open_.find(group_key);
    if (it != open_.end()) {
      // Join the open group as a follower.
      g = it->second;
      g->members.push_back(m);
      if (now + cap < g->close_at) g->close_at = now + cap;
      if (g->members.size() >= config_.max_members) g->closed_by_size = true;
      g->cv.notify_all();
      g->cv.wait(lock, [&] { return m->released; });
      lock.unlock();
      if (m->needs_solo) {
        m->needs_solo = false;
        ExecuteMembers({m});
      }
      return;
    }

    // Leader: open a group and hold the gather window.
    g = std::make_shared<Group>();
    g->members.push_back(m);
    g->close_at = now + cap;
    open_.emplace(group_key, g);
    while (!g->closed_by_size && !stopping_ &&
           std::chrono::steady_clock::now() < g->close_at) {
      g->cv.wait_until(lock, g->close_at);
    }
    auto open_it = open_.find(group_key);
    if (open_it != open_.end() && open_it->second == g) open_.erase(open_it);

    // Cost-model partition: a member joins the shared pass iff it shares
    // at least one candidate cell with another member (one dataset draw
    // then serves several mask/blend tests). Everyone else runs solo on
    // their own thread — batching must never serialize disjoint work.
    std::vector<Member*> shared;
    std::vector<bool> is_shared(g->members.size(), false);
    for (size_t i = 0; i < g->members.size(); ++i) {
      for (size_t j = i + 1; j < g->members.size(); ++j) {
        if (is_shared[i] && is_shared[j]) continue;
        if (CellsIntersect(g->members[i]->cells, g->members[j]->cells)) {
          is_shared[i] = true;
          is_shared[j] = true;
        }
      }
    }
    for (size_t i = 0; i < g->members.size(); ++i) {
      Member* gm = g->members[i];
      gm->group_members = static_cast<int64_t>(g->members.size());
      if (is_shared[i]) shared.push_back(gm);
    }
    NoteGroupOutcome(g->members.size(), shared.size() >= 2);
    // Release the solo followers immediately — they execute themselves
    // concurrently while the leader drives the shared pass.
    for (size_t i = 0; i < g->members.size(); ++i) {
      Member* gm = g->members[i];
      if (gm == m || is_shared[i]) continue;
      gm->needs_solo = true;
      gm->released = true;
    }
    g->cv.notify_all();
    lock.unlock();

    // Sharing is pairwise, so `shared` holds zero or >= 2 members. The
    // leader drives the shared pass either way (the followers in it are
    // blocked waiting on it), then runs itself solo if it wasn't part of
    // the sharing.
    const bool leader_in_shared = is_shared[0];
    if (shared.size() >= 2) {
      ExecuteMembers(shared);
      std::unique_lock<std::mutex> relock(mu_);
      for (Member* gm : shared) {
        if (gm == m) continue;
        gm->released = true;
      }
      g->cv.notify_all();
    }
    if (!leader_in_shared) ExecuteMembers({m});
    if (m->needs_solo) {
      // Shared canvas admission failed for the leader; rerun alone.
      m->needs_solo = false;
      ExecuteMembers({m});
    }
  }
}

void BatchScheduler::NoteGroupOutcome(size_t members, bool shared_anything) {
  // Called with mu_ held.
  BatchTotal().Add(1);
  BatchMembersHist().Record(static_cast<double>(members));
  const auto configured = static_cast<int64_t>(config_.window_ms * 1000.0);
  if (shared_anything) {
    window_us_ = configured;
  } else {
    const int64_t floor_us = std::max<int64_t>(1, configured / 32);
    window_us_ = std::max(floor_us, window_us_ / 2);
  }
}

void BatchScheduler::ExecuteMembers(const std::vector<Member*>& members) {
  // One device slot for the whole group — that is the throughput win: k
  // co-scheduled queries occupy one slot and one dataset draw per cell.
  SemaphoreGuard slot(device_slots_);
  GaugeOccupancy slot_gauge(&SlotsBusyGauge());
  GfxDevice& device = engine_->device();
  const uint64_t uid = members[0]->uid;

  // Admit every member's constraint canvas to device memory. A canvas
  // that does not fit alongside the others is bounced back to solo
  // execution (where it only needs its own) instead of failing.
  std::vector<DeviceAllocation> canvas_mem;
  std::vector<Member*> active;
  canvas_mem.reserve(members.size());
  for (Member* m : members) {
    auto alloc = DeviceAllocation::Make(&device, m->canvas.ByteSize());
    if (!alloc.ok()) {
      if (members.size() == 1) {
        m->status = alloc.status();
      } else {
        m->needs_solo = true;
      }
      continue;
    }
    canvas_mem.push_back(std::move(alloc).value());
    active.push_back(m);
  }
  if (active.empty()) return;

  // Union of candidate cells -> which members need each cell.
  std::map<size_t, std::vector<Member*>> by_cell;
  for (Member* m : active) {
    for (size_t c : m->cells) by_cell[c].push_back(m);
  }

  int64_t shared_draws = 0;
  int64_t saved_passes = 0;
  for (auto& [cell, cell_members] : by_cell) {
    // Cache entries are keyed by the cell's content version so a result
    // computed against an older epoch of a mutable (ingest) dataset can
    // never satisfy a later query. Static sources always report 0.
    const uint64_t cell_version = members[0]->src->cell_version(cell);
    // Cache probes and cooperative cancellation at the cell boundary: a
    // cancelled member leaves with its typed status; the others continue.
    std::vector<Member*> need;
    for (Member* m : cell_members) {
      if (!m->status.ok()) continue;
      if (m->cancel != nullptr) {
        const Status st = m->cancel->Check();
        if (!st.ok()) {
          m->status = st;
          continue;
        }
      }
      std::vector<uint32_t> cached;
      if (cache_.Lookup(uid, cell, cell_version, m->signature, &cached)) {
        m->ids.insert(m->ids.end(), cached.begin(), cached.end());
        ++m->cache_hits;
        continue;
      }
      need.push_back(m);
    }
    if (need.empty()) continue;

    QueryStats load_stats;
    auto prep_r =
        engine_->preparer().Get(*members[0]->src, cell, /*need_layers=*/false,
                                &load_stats);
    if (!prep_r.ok()) {
      for (Member* m : need) m->status = prep_r.status();
      continue;
    }
    auto passes_r = exec::PlanCellPasses(&device, prep_r.value(), &load_stats);
    if (!passes_r.ok()) {
      for (Member* m : need) m->status = passes_r.status();
      continue;
    }
    // Each member would have paid this load and plan alone: attribute it
    // to all of them (the draw itself is what sharing amortizes).
    for (Member* m : need) m->stats.Merge(load_stats);

    for (const auto& pass : passes_r.value()) {
      SPADE_TRACE_SPAN_VAR(pass_span, "batch.cell_pass");
      pass_span.AddArg("cell", static_cast<int64_t>(cell));
      pass_span.AddArg("objects", static_cast<int64_t>(pass->size()));
      pass_span.AddArg("members", static_cast<int64_t>(need.size()));
      auto cell_mem = DeviceAllocation::Make(&device, pass->transfer_bytes());
      if (!cell_mem.ok()) {
        for (Member* m : need) {
          if (m->status.ok()) m->status = cell_mem.status();
        }
        break;
      }

      Stopwatch gpu_sw;
      std::vector<std::vector<GeomId>> pass_ids(need.size());
      std::mutex flush_mu;
      // ONE dataset draw for the whole group. Deliberately no CancelScope
      // here: the device's best-effort fast-out must not let one member's
      // tripped token skip fragments the other members still need.
      device.DrawParallel(pass->size(), [&](size_t lo, size_t hi) {
        size_t chunk_frags = 0;
        std::vector<GeomId> owners;
        std::vector<std::vector<GeomId>> local(need.size());
        std::vector<int64_t> local_frags(need.size(), 0);
        for (size_t i = lo; i < hi; ++i) {
          for (size_t k = 0; k < need.size(); ++k) {
            Member* m = need[k];
            // Mid-pass leave: a member whose token tripped stops costing
            // fragments; its typed status lands at the next Check().
            if (m->cancel != nullptr && m->cancel->cancelled()) continue;
            if (m->contains) {
              size_t f = 0;
              owners.clear();
              if (exec::TestObjectContains(*pass, i, m->canvas, m->bounds,
                                           &owners, &f)) {
                local[k].push_back(pass->global_id(i));
              }
              local_frags[k] += static_cast<int64_t>(f);
              chunk_frags += f;
            } else {
              owners.clear();
              const size_t f = exec::TestOneObject(
                  *pass, i, m->canvas, m->view, m->transform, m->identity,
                  m->distance_mode, &owners);
              local_frags[k] += static_cast<int64_t>(f);
              chunk_frags += f;
              if (!owners.empty()) local[k].push_back(pass->global_id(i));
            }
          }
        }
        std::lock_guard<std::mutex> flush(flush_mu);
        for (size_t k = 0; k < need.size(); ++k) {
          pass_ids[k].insert(pass_ids[k].end(), local[k].begin(),
                             local[k].end());
          need[k]->stats.fragments += local_frags[k];
        }
        return chunk_frags;
      });
      const double gpu_s = gpu_sw.ElapsedSeconds();
      ++shared_draws;
      saved_passes += static_cast<int64_t>(need.size()) - 1;

      for (size_t k = 0; k < need.size(); ++k) {
        Member* m = need[k];
        m->stats.gpu_seconds += gpu_s;
        m->stats.render_passes += 1;
        std::sort(pass_ids[k].begin(), pass_ids[k].end());
        pass_ids[k].erase(
            std::unique(pass_ids[k].begin(), pass_ids[k].end()),
            pass_ids[k].end());
        // Cache only complete cells: a member that cancelled mid-pass may
        // have skipped objects, so its partial set must not be memoized.
        const bool tripped =
            m->cancel != nullptr && m->cancel->cancelled();
        if (!tripped && passes_r.value().size() == 1) {
          cache_.Insert(uid, cell, cell_version, m->signature, pass_ids[k]);
        }
        m->ids.insert(m->ids.end(), pass_ids[k].begin(), pass_ids[k].end());
      }
    }
  }

  for (Member* m : active) {
    m->shared_draws += shared_draws;
    m->saved_passes += saved_passes;
  }
  if (active.size() >= 2) {
    SharedDrawsTotal().Add(shared_draws);
    SavedPassesTotal().Add(saved_passes);
  }
}

}  // namespace batch
}  // namespace spade
