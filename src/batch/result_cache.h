// Per-cell query result cache (ISSUE 7): memoizes the sorted ids a query
// shape produced over one grid cell of one dataset, so repeated identical
// or overlapping queries skip the rasterization pass for that cell
// entirely. Keys are (dataset uid, cell, query-shape signature); values
// are byte-accounted and evicted LRU. Invalidation hooks drop every entry
// of a dataset when its cells are reloaded or the source is replaced.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <vector>

namespace spade {
namespace batch {

/// \brief A (dataset, cell, query-shape) cache of per-cell result ids.
///
/// Thread-safe. The signature must capture everything that determines the
/// per-cell result set: query kind, constraint geometry bits, projection
/// flag, and the engine configuration knobs that alter exactness-relevant
/// behavior are assumed fixed per service (one engine per service).
class ResultCache {
 public:
  /// `budget_bytes` caps the resident value bytes (keys/overhead counted
  /// with a small flat estimate). 0 disables caching entirely.
  explicit ResultCache(size_t budget_bytes) : budget_(budget_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Look up the per-cell ids for (uid, cell, version, signature).
  /// `version` is the cell's content version (CellSource::cell_version) at
  /// lookup time — entries inserted against an older version can never
  /// hit, so a slow query finishing after an append cannot poison later
  /// ones even if its insert races the invalidation. Returns true and
  /// fills `*out` (sorted, deduped ids) on a hit.
  bool Lookup(uint64_t uid, size_t cell, uint64_t version, uint64_t signature,
              std::vector<uint32_t>* out);

  /// Insert (or refresh) an entry. `ids` must be the complete, sorted,
  /// deduped per-cell result. No-op when the cache is disabled or the
  /// entry alone exceeds the budget.
  void Insert(uint64_t uid, size_t cell, uint64_t version, uint64_t signature,
              const std::vector<uint32_t>& ids);

  /// Drop every entry of dataset `uid` (source replaced / cells reloaded).
  void InvalidateSource(uint64_t uid);

  /// Drop every entry (any version, any signature) of the named cells of
  /// dataset `uid` — the post-append / post-merge hygiene hook. Bumps
  /// spade_result_cache_invalidations_total per dropped entry.
  void InvalidateCells(uint64_t uid, const std::vector<size_t>& cells);

  /// Drop everything.
  void Clear();

  size_t bytes() const;
  size_t entries() const;

 private:
  struct Key {
    uint64_t uid;
    size_t cell;
    uint64_t version;
    uint64_t signature;
    bool operator<(const Key& o) const {
      if (uid != o.uid) return uid < o.uid;
      if (cell != o.cell) return cell < o.cell;
      if (version != o.version) return version < o.version;
      return signature < o.signature;
    }
  };
  struct Entry {
    std::vector<uint32_t> ids;
    size_t bytes = 0;
    std::list<Key>::iterator lru_it;
  };

  static size_t EntryBytes(const std::vector<uint32_t>& ids) {
    // Flat overhead estimate for key + map node + list node.
    return ids.size() * sizeof(uint32_t) + 96;
  }

  void EvictIfNeededLocked();

  const size_t budget_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recently used
  size_t bytes_ = 0;
};

}  // namespace batch
}  // namespace spade
