#include "geom/geometry.h"

#include <algorithm>
#include <cmath>

namespace spade {

double Polygon::RingSignedArea(const std::vector<Vec2>& ring) {
  double a = 0;
  const size_t n = ring.size();
  for (size_t i = 0; i < n; ++i) {
    const Vec2& p = ring[i];
    const Vec2& q = ring[(i + 1) % n];
    a += p.Cross(q);
  }
  return a * 0.5;
}

double Polygon::Area() const {
  double a = std::abs(RingSignedArea(outer));
  for (const auto& h : holes) a -= std::abs(RingSignedArea(h));
  return a;
}

Vec2 Polygon::Centroid() const {
  Vec2 c;
  if (outer.empty()) return c;
  for (const auto& p : outer) c = c + p;
  return c / static_cast<double>(outer.size());
}

void Polygon::Normalize() {
  if (RingSignedArea(outer) < 0) std::reverse(outer.begin(), outer.end());
  for (auto& h : holes) {
    if (RingSignedArea(h) > 0) std::reverse(h.begin(), h.end());
  }
}

Polygon Polygon::FromBox(const Box& b) {
  Polygon p;
  p.outer = {{b.min.x, b.min.y},
             {b.max.x, b.min.y},
             {b.max.x, b.max.y},
             {b.min.x, b.max.y}};
  return p;
}

Polygon Polygon::Circle(Vec2 center, double radius, int segments) {
  Polygon p;
  p.outer.reserve(segments);
  for (int i = 0; i < segments; ++i) {
    const double t = 2.0 * M_PI * i / segments;
    p.outer.push_back(
        {center.x + radius * std::cos(t), center.y + radius * std::sin(t)});
  }
  return p;
}

Box Geometry::Bounds() const {
  switch (type()) {
    case GeomType::kPoint: {
      Box b;
      b.Extend(point());
      return b;
    }
    case GeomType::kLine:
      return line().Bounds();
    case GeomType::kPolygon:
      return polygon().Bounds();
  }
  return Box();
}

Vec2 Geometry::Centroid() const {
  switch (type()) {
    case GeomType::kPoint:
      return point();
    case GeomType::kLine: {
      Vec2 c;
      const auto& pts = line().points;
      if (pts.empty()) return c;
      for (const auto& p : pts) c = c + p;
      return c / static_cast<double>(pts.size());
    }
    case GeomType::kPolygon: {
      const auto& mp = polygon();
      Vec2 c;
      size_t n = 0;
      for (const auto& part : mp.parts) {
        for (const auto& p : part.outer) {
          c = c + p;
          ++n;
        }
      }
      if (n == 0) return c;
      return c / static_cast<double>(n);
    }
  }
  return Vec2();
}

size_t Geometry::NumVertices() const {
  switch (type()) {
    case GeomType::kPoint:
      return 1;
    case GeomType::kLine:
      return line().points.size();
    case GeomType::kPolygon:
      return polygon().NumVertices();
  }
  return 0;
}

size_t Geometry::ByteSize() const {
  // Two doubles per vertex plus a small fixed header; this feeds the
  // simulated CPU->GPU transfer accounting.
  return 16 + NumVertices() * sizeof(Vec2);
}

}  // namespace spade
