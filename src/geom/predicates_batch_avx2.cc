// AVX2 lanes for the batch predicates: 4 triangles / 4 segments per vector,
// one query point broadcast across lanes. Compiled with -mavx2 and
// deliberately without -mfma (contraction would change rounding and break
// bit-identity with the scalar predicates).
//
// Point-in-triangle runs the three orientation determinants in double
// behind a Shewchuk-style floating-point filter. A determinant sign is
// certain when |det| > ccwerrboundA * (|detleft| + |detright|) and the
// magnitudes sit safely inside the normal range (no overflow to infinity,
// no underflow past what the error analysis covers); every other lane falls
// back to the scalar long-double predicate, which is the repo's oracle.
#include "geom/predicates_batch.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>

#include "geom/predicates.h"

namespace spade {
namespace geom_simd_detail {
namespace {

constexpr double kEps = 1.1102230246251565e-16;  // 2^-53
constexpr double kCcwErrBoundA = (3.0 + 16.0 * kEps) * kEps;
// Magnitude window where the filter's analysis holds: products stay normal
// (no underflow denormal loss) and sums stay finite.
constexpr double kMagMin = 1e-292;
constexpr double kMagMax = 1e300;

inline __m256d Abs(__m256d v) {
  return _mm256_andnot_pd(_mm256_set1_pd(-0.0), v);
}

/// Determinant of one orientation test for 4 lanes: sign masks for
/// det < 0 / det > 0 and a "sign is certain" mask.
struct OrientLanes {
  __m256d neg;
  __m256d pos;
  __m256d certain;
};

inline OrientLanes OrientFiltered(__m256d ux, __m256d uy, __m256d vx,
                                  __m256d vy, __m256d px, __m256d py) {
  const __m256d acx = _mm256_sub_pd(ux, px);
  const __m256d bcx = _mm256_sub_pd(vx, px);
  const __m256d acy = _mm256_sub_pd(uy, py);
  const __m256d bcy = _mm256_sub_pd(vy, py);
  const __m256d detl = _mm256_mul_pd(acx, bcy);
  const __m256d detr = _mm256_mul_pd(acy, bcx);
  const __m256d det = _mm256_sub_pd(detl, detr);
  const __m256d mag = _mm256_add_pd(Abs(detl), Abs(detr));
  const __m256d err = _mm256_mul_pd(_mm256_set1_pd(kCcwErrBoundA), mag);
  const __m256d zero = _mm256_setzero_pd();
  OrientLanes r;
  r.certain = _mm256_and_pd(
      _mm256_cmp_pd(Abs(det), err, _CMP_GT_OQ),
      _mm256_and_pd(_mm256_cmp_pd(mag, _mm256_set1_pd(kMagMin), _CMP_GT_OQ),
                    _mm256_cmp_pd(mag, _mm256_set1_pd(kMagMax), _CMP_LT_OQ)));
  r.neg = _mm256_cmp_pd(det, zero, _CMP_LT_OQ);
  r.pos = _mm256_cmp_pd(det, zero, _CMP_GT_OQ);
  return r;
}

void PointInTrianglesAvx2(const double* ax, const double* ay,
                          const double* bx, const double* by,
                          const double* cx, const double* cy, size_t n,
                          const Vec2& p, uint8_t* out) {
  const __m256d px = _mm256_set1_pd(p.x);
  const __m256d py = _mm256_set1_pd(p.y);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vax = _mm256_loadu_pd(ax + i);
    const __m256d vay = _mm256_loadu_pd(ay + i);
    const __m256d vbx = _mm256_loadu_pd(bx + i);
    const __m256d vby = _mm256_loadu_pd(by + i);
    const __m256d vcx = _mm256_loadu_pd(cx + i);
    const __m256d vcy = _mm256_loadu_pd(cy + i);
    const OrientLanes d1 = OrientFiltered(vax, vay, vbx, vby, px, py);
    const OrientLanes d2 = OrientFiltered(vbx, vby, vcx, vcy, px, py);
    const OrientLanes d3 = OrientFiltered(vcx, vcy, vax, vay, px, py);
    const __m256d certain =
        _mm256_and_pd(d1.certain, _mm256_and_pd(d2.certain, d3.certain));
    const __m256d has_neg =
        _mm256_or_pd(d1.neg, _mm256_or_pd(d2.neg, d3.neg));
    const __m256d has_pos =
        _mm256_or_pd(d1.pos, _mm256_or_pd(d2.pos, d3.pos));
    const int straddle = _mm256_movemask_pd(_mm256_and_pd(has_neg, has_pos));
    const int ok = _mm256_movemask_pd(certain);
    for (int lane = 0; lane < 4; ++lane) {
      if (ok & (1 << lane)) {
        out[i + lane] = (straddle & (1 << lane)) ? 0 : 1;
      } else {
        out[i + lane] =
            PointInTriangle({ax[i + lane], ay[i + lane]},
                            {bx[i + lane], by[i + lane]},
                            {cx[i + lane], cy[i + lane]}, p)
                ? 1
                : 0;
      }
    }
  }
  for (; i < n; ++i) {
    out[i] = PointInTriangle({ax[i], ay[i]}, {bx[i], by[i]}, {cx[i], cy[i]}, p)
                 ? 1
                 : 0;
  }
}

void PointSegmentDistancesAvx2(const Vec2& p, const double* ax,
                               const double* ay, const double* bx,
                               const double* by, size_t n, double* out) {
  const __m256d px = _mm256_set1_pd(p.x);
  const __m256d py = _mm256_set1_pd(p.y);
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vax = _mm256_loadu_pd(ax + i);
    const __m256d vay = _mm256_loadu_pd(ay + i);
    const __m256d vbx = _mm256_loadu_pd(bx + i);
    const __m256d vby = _mm256_loadu_pd(by + i);
    // Exact operation order of the scalar PointSegmentDistance.
    const __m256d abx = _mm256_sub_pd(vbx, vax);
    const __m256d aby = _mm256_sub_pd(vby, vay);
    const __m256d len2 = _mm256_add_pd(_mm256_mul_pd(abx, abx),
                                       _mm256_mul_pd(aby, aby));
    const __m256d pax = _mm256_sub_pd(px, vax);
    const __m256d pay = _mm256_sub_pd(py, vay);
    const __m256d dot = _mm256_add_pd(_mm256_mul_pd(pax, abx),
                                      _mm256_mul_pd(pay, aby));
    // std::clamp(t, 0, 1) semantics, including NaN propagation: max/min
    // with the constant as the first source returns the second (t-derived)
    // operand on NaN, matching the scalar comparisons.
    const __m256d t = _mm256_min_pd(
        one, _mm256_max_pd(zero, _mm256_div_pd(dot, len2)));
    const __m256d qx = _mm256_add_pd(vax, _mm256_mul_pd(abx, t));
    const __m256d qy = _mm256_add_pd(vay, _mm256_mul_pd(aby, t));
    const __m256d dx = _mm256_sub_pd(px, qx);
    const __m256d dy = _mm256_sub_pd(py, qy);
    __m256d result = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
    // Degenerate segments (len2 == 0): distance to the endpoint a. The
    // second sqrt only runs when such a lane exists (rare), and the blend
    // leaves non-degenerate lanes untouched, so outputs are unchanged.
    const __m256d degen = _mm256_cmp_pd(len2, zero, _CMP_EQ_OQ);
    if (_mm256_movemask_pd(degen) != 0) {
      const __m256d dpt = _mm256_sqrt_pd(
          _mm256_add_pd(_mm256_mul_pd(pax, pax), _mm256_mul_pd(pay, pay)));
      result = _mm256_blendv_pd(result, dpt, degen);
    }
    _mm256_storeu_pd(out + i, result);
  }
  for (; i < n; ++i) {
    out[i] = PointSegmentDistance(p, {ax[i], ay[i]}, {bx[i], by[i]});
  }
}

}  // namespace

PointInTrianglesFn Avx2PointInTriangles() { return PointInTrianglesAvx2; }
PointSegmentDistancesFn Avx2PointSegmentDistances() {
  return PointSegmentDistancesAvx2;
}

}  // namespace geom_simd_detail
}  // namespace spade

#else  // !__AVX2__

namespace spade {
namespace geom_simd_detail {
PointInTrianglesFn Avx2PointInTriangles() { return nullptr; }
PointSegmentDistancesFn Avx2PointSegmentDistances() { return nullptr; }
}  // namespace geom_simd_detail
}  // namespace spade

#endif  // __AVX2__
