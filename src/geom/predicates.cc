#include "geom/predicates.h"

#include <algorithm>
#include <cmath>

namespace spade {

double Orient2D(const Vec2& a, const Vec2& b, const Vec2& c) {
  // Evaluated in long double to tame cancellation on near-collinear input;
  // for the coordinate magnitudes used by the engine (unit square or web-
  // mercator meters) this is effectively exact.
  const long double acx = static_cast<long double>(a.x) - c.x;
  const long double bcx = static_cast<long double>(b.x) - c.x;
  const long double acy = static_cast<long double>(a.y) - c.y;
  const long double bcy = static_cast<long double>(b.y) - c.y;
  const long double det = acx * bcy - acy * bcx;
  return static_cast<double>(det);
}

bool OnSegment(const Vec2& a, const Vec2& b, const Vec2& p) {
  if (Orient2D(a, b, p) != 0) return false;
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

bool SegmentsIntersect(const Vec2& p1, const Vec2& p2, const Vec2& q1,
                       const Vec2& q2) {
  const double d1 = Orient2D(q1, q2, p1);
  const double d2 = Orient2D(q1, q2, p2);
  const double d3 = Orient2D(p1, p2, q1);
  const double d4 = Orient2D(p1, p2, q2);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && OnSegment(q1, q2, p1)) return true;
  if (d2 == 0 && OnSegment(q1, q2, p2)) return true;
  if (d3 == 0 && OnSegment(p1, p2, q1)) return true;
  if (d4 == 0 && OnSegment(p1, p2, q2)) return true;
  return false;
}

bool PointInTriangle(const Vec2& a, const Vec2& b, const Vec2& c,
                     const Vec2& p) {
  const double d1 = Orient2D(a, b, p);
  const double d2 = Orient2D(b, c, p);
  const double d3 = Orient2D(c, a, p);
  const bool has_neg = (d1 < 0) || (d2 < 0) || (d3 < 0);
  const bool has_pos = (d1 > 0) || (d2 > 0) || (d3 > 0);
  return !(has_neg && has_pos);
}

bool SegmentIntersectsTriangle(const Vec2& p, const Vec2& q, const Vec2& a,
                               const Vec2& b, const Vec2& c) {
  if (PointInTriangle(a, b, c, p) || PointInTriangle(a, b, c, q)) return true;
  return SegmentsIntersect(p, q, a, b) || SegmentsIntersect(p, q, b, c) ||
         SegmentsIntersect(p, q, c, a);
}

bool TrianglesIntersect(const Vec2& a1, const Vec2& b1, const Vec2& c1,
                        const Vec2& a2, const Vec2& b2, const Vec2& c2) {
  // Any edge of one crossing any edge of the other, or full containment.
  const Vec2 t1[3] = {a1, b1, c1};
  const Vec2 t2[3] = {a2, b2, c2};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (SegmentsIntersect(t1[i], t1[(i + 1) % 3], t2[j], t2[(j + 1) % 3])) {
        return true;
      }
    }
  }
  return PointInTriangle(a2, b2, c2, a1) || PointInTriangle(a1, b1, c1, a2);
}

bool PointInRing(const std::vector<Vec2>& ring, const Vec2& p) {
  const size_t n = ring.size();
  if (n < 3) return false;
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Vec2& a = ring[j];
    const Vec2& b = ring[i];
    if (OnSegment(a, b, p)) return true;  // boundary counts as inside
    if ((b.y > p.y) != (a.y > p.y)) {
      const double t = (p.y - b.y) / (a.y - b.y);
      const double xint = b.x + t * (a.x - b.x);
      if (p.x < xint) inside = !inside;
    }
  }
  return inside;
}

bool PointInPolygon(const Polygon& poly, const Vec2& p) {
  if (!PointInRing(poly.outer, p)) return false;
  for (const auto& h : poly.holes) {
    // Strictly inside a hole -> outside. Hole boundary belongs to polygon.
    if (PointInRing(h, p)) {
      bool on_hole_boundary = false;
      const size_t n = h.size();
      for (size_t i = 0, j = n - 1; i < n && !on_hole_boundary; j = i++) {
        on_hole_boundary = OnSegment(h[j], h[i], p);
      }
      if (!on_hole_boundary) return false;
    }
  }
  return true;
}

bool PointInMultiPolygon(const MultiPolygon& mp, const Vec2& p) {
  for (const auto& part : mp.parts) {
    if (PointInPolygon(part, p)) return true;
  }
  return false;
}

namespace {

bool SegmentIntersectsRing(const std::vector<Vec2>& ring, const Vec2& p,
                           const Vec2& q) {
  const size_t n = ring.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    if (SegmentsIntersect(ring[j], ring[i], p, q)) return true;
  }
  return false;
}

}  // namespace

bool SegmentIntersectsPolygon(const Polygon& poly, const Vec2& p,
                              const Vec2& q) {
  if (PointInPolygon(poly, p) || PointInPolygon(poly, q)) return true;
  if (SegmentIntersectsRing(poly.outer, p, q)) return true;
  for (const auto& h : poly.holes) {
    if (SegmentIntersectsRing(h, p, q)) return true;
  }
  return false;
}

bool LineIntersectsPolygon(const Polygon& poly, const LineString& line) {
  const auto& pts = line.points;
  if (pts.size() == 1) return PointInPolygon(poly, pts[0]);
  for (size_t i = 1; i < pts.size(); ++i) {
    if (SegmentIntersectsPolygon(poly, pts[i - 1], pts[i])) return true;
  }
  return false;
}

bool PolygonsIntersect(const Polygon& a, const Polygon& b) {
  if (!a.Bounds().Intersects(b.Bounds())) return false;
  // Edge-edge crossings.
  const size_t na = a.outer.size();
  for (size_t i = 0, j = na - 1; i < na; j = i++) {
    if (SegmentIntersectsPolygon(b, a.outer[j], a.outer[i])) return true;
  }
  for (const auto& h : a.holes) {
    const size_t nh = h.size();
    for (size_t i = 0, j = nh - 1; i < nh; j = i++) {
      if (SegmentIntersectsPolygon(b, h[j], h[i])) return true;
    }
  }
  // One fully containing the other (no edge crossings): a vertex test
  // suffices.
  if (!b.outer.empty() && PointInPolygon(a, b.outer[0])) return true;
  if (!a.outer.empty() && PointInPolygon(b, a.outer[0])) return true;
  return false;
}

bool MultiPolygonsIntersect(const MultiPolygon& a, const MultiPolygon& b) {
  for (const auto& pa : a.parts) {
    for (const auto& pb : b.parts) {
      if (PolygonsIntersect(pa, pb)) return true;
    }
  }
  return false;
}

bool GeometryIntersectsPolygon(const Geometry& g, const MultiPolygon& poly) {
  switch (g.type()) {
    case GeomType::kPoint:
      return PointInMultiPolygon(poly, g.point());
    case GeomType::kLine:
      for (const auto& part : poly.parts) {
        if (LineIntersectsPolygon(part, g.line())) return true;
      }
      return false;
    case GeomType::kPolygon:
      return MultiPolygonsIntersect(g.polygon(), poly);
  }
  return false;
}

double PointSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b) {
  const Vec2 ab = b - a;
  const double len2 = ab.Norm2();
  if (len2 == 0) return p.DistanceTo(a);
  double t = (p - a).Dot(ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return p.DistanceTo(a + ab * t);
}

double SegmentSegmentDistance(const Vec2& p1, const Vec2& p2, const Vec2& q1,
                              const Vec2& q2) {
  if (SegmentsIntersect(p1, p2, q1, q2)) return 0;
  return std::min(
      std::min(PointSegmentDistance(p1, q1, q2), PointSegmentDistance(p2, q1, q2)),
      std::min(PointSegmentDistance(q1, p1, p2), PointSegmentDistance(q2, p1, p2)));
}

double PointPolygonDistance(const Polygon& poly, const Vec2& p) {
  if (PointInPolygon(poly, p)) return 0;
  double d = std::numeric_limits<double>::max();
  const size_t n = poly.outer.size();
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    d = std::min(d, PointSegmentDistance(p, poly.outer[j], poly.outer[i]));
  }
  for (const auto& h : poly.holes) {
    const size_t nh = h.size();
    for (size_t i = 0, j = nh - 1; i < nh; j = i++) {
      d = std::min(d, PointSegmentDistance(p, h[j], h[i]));
    }
  }
  return d;
}

double PointMultiPolygonDistance(const MultiPolygon& mp, const Vec2& p) {
  double d = std::numeric_limits<double>::max();
  for (const auto& part : mp.parts) {
    d = std::min(d, PointPolygonDistance(part, p));
    if (d == 0) return 0;
  }
  return d;
}

double PointLineStringDistance(const LineString& line, const Vec2& p) {
  const auto& pts = line.points;
  if (pts.empty()) return std::numeric_limits<double>::max();
  if (pts.size() == 1) return p.DistanceTo(pts[0]);
  double d = std::numeric_limits<double>::max();
  for (size_t i = 1; i < pts.size(); ++i) {
    d = std::min(d, PointSegmentDistance(p, pts[i - 1], pts[i]));
  }
  return d;
}

bool SegmentIntersectsBox(const Box& box, const Vec2& a, const Vec2& b) {
  if (box.Contains(a) || box.Contains(b)) return true;
  const Vec2 c0{box.min.x, box.min.y}, c1{box.max.x, box.min.y};
  const Vec2 c2{box.max.x, box.max.y}, c3{box.min.x, box.max.y};
  return SegmentsIntersect(a, b, c0, c1) || SegmentsIntersect(a, b, c1, c2) ||
         SegmentsIntersect(a, b, c2, c3) || SegmentsIntersect(a, b, c3, c0);
}

double BoxSegmentDistance(const Box& box, const Vec2& a, const Vec2& b) {
  if (SegmentIntersectsBox(box, a, b)) return 0;
  const Vec2 c0{box.min.x, box.min.y}, c1{box.max.x, box.min.y};
  const Vec2 c2{box.max.x, box.max.y}, c3{box.min.x, box.max.y};
  double d = std::min(
      std::min(SegmentSegmentDistance(a, b, c0, c1),
               SegmentSegmentDistance(a, b, c1, c2)),
      std::min(SegmentSegmentDistance(a, b, c2, c3),
               SegmentSegmentDistance(a, b, c3, c0)));
  return d;
}

double BoxSegmentMaxDistance(const Box& box, const Vec2& a, const Vec2& b) {
  double d = 0;
  for (const Vec2 c : {Vec2{box.min.x, box.min.y}, Vec2{box.max.x, box.min.y},
                       Vec2{box.max.x, box.max.y}, Vec2{box.min.x, box.max.y}}) {
    d = std::max(d, PointSegmentDistance(c, a, b));
  }
  return d;
}

double PointGeometryDistance(const Geometry& g, const Vec2& p) {
  switch (g.type()) {
    case GeomType::kPoint:
      return p.DistanceTo(g.point());
    case GeomType::kLine:
      return PointLineStringDistance(g.line(), p);
    case GeomType::kPolygon:
      return PointMultiPolygonDistance(g.polygon(), p);
  }
  return std::numeric_limits<double>::max();
}

}  // namespace spade
