// Ear-clipping polygon triangulation (the role Earcut.hpp plays in the
// paper). Polygons are decomposed into triangles before being drawn by the
// pipeline, and the triangles also populate the boundary index.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geom/geometry.h"

namespace spade {

/// \brief A triangle over explicit coordinates.
struct Triangle {
  Vec2 a, b, c;

  Box Bounds() const {
    Box box;
    box.Extend(a);
    box.Extend(b);
    box.Extend(c);
    return box;
  }
  double Area() const { return 0.5 * std::abs((b - a).Cross(c - a)); }
};

/// \brief Result of triangulating one polygon: the triangles plus, for each
/// boundary edge of the polygon, the triangle incident on it (Section 4.3's
/// edge->triangle mapping used by the boundary index).
struct Triangulation {
  std::vector<Triangle> triangles;

  /// One entry per boundary edge (outer ring edges first, then hole edges,
  /// ring by ring, in ring order): index into `triangles` of the triangle
  /// incident on that edge, or -1 when the edge was a bridge artifact.
  std::vector<int32_t> edge_triangle;

  /// The boundary edges in the same order as edge_triangle.
  std::vector<std::array<Vec2, 2>> edges;
};

/// Triangulate a polygon (holes supported) by ear clipping.
/// Degenerate inputs (fewer than 3 outer vertices) yield no triangles.
Triangulation Triangulate(const Polygon& poly);

/// Triangulate every part of a multipolygon into one shared triangle list.
Triangulation Triangulate(const MultiPolygon& mp);

}  // namespace spade
