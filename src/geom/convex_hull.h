// Convex hull (Andrew's monotone chain). The clustered grid index stores
// the convex hull of each cell's contents as its bounding polygon
// (Section 5.3), which is what makes GPU-based index filtering effective.
#pragma once

#include <vector>

#include "geom/geometry.h"
#include "geom/vec2.h"

namespace spade {

/// Convex hull of a point set, counter-clockwise, no repeated last vertex.
/// Returns the input (deduplicated) when fewer than 3 distinct points.
std::vector<Vec2> ConvexHull(std::vector<Vec2> points);

/// Convex hull over all the vertices of a set of geometries, as a Polygon.
Polygon ConvexHullPolygon(const std::vector<Geometry>& geoms);
Polygon ConvexHullPolygon(const std::vector<const Geometry*>& geoms);

}  // namespace spade
