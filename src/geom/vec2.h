// 2-D point and axis-aligned box primitives used throughout the engine.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace spade {

/// \brief A 2-D point / vector with double-precision coordinates.
struct Vec2 {
  double x = 0;
  double y = 0;

  Vec2() = default;
  Vec2(double x_, double y_) : x(x_), y(y_) {}

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  Vec2 operator/(double s) const { return {x / s, y / s}; }
  bool operator==(const Vec2& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Vec2& o) const { return !(*this == o); }

  double Dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// Z component of the 3-D cross product (signed parallelogram area).
  double Cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double Norm2() const { return x * x + y * y; }
  double Norm() const { return std::sqrt(Norm2()); }

  double DistanceTo(const Vec2& o) const { return (*this - o).Norm(); }
  double Distance2To(const Vec2& o) const { return (*this - o).Norm2(); }
};

/// \brief An axis-aligned bounding box.
struct Box {
  Vec2 min{std::numeric_limits<double>::max(),
           std::numeric_limits<double>::max()};
  Vec2 max{std::numeric_limits<double>::lowest(),
           std::numeric_limits<double>::lowest()};

  Box() = default;
  Box(Vec2 min_, Vec2 max_) : min(min_), max(max_) {}
  Box(double x0, double y0, double x1, double y1) : min(x0, y0), max(x1, y1) {}

  bool Empty() const { return min.x > max.x || min.y > max.y; }
  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  double Area() const { return Empty() ? 0 : Width() * Height(); }
  Vec2 Center() const { return (min + max) * 0.5; }

  void Extend(const Vec2& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }
  void Extend(const Box& b) {
    if (b.Empty()) return;
    Extend(b.min);
    Extend(b.max);
  }

  bool Contains(const Vec2& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  bool Contains(const Box& b) const {
    return b.min.x >= min.x && b.max.x <= max.x && b.min.y >= min.y &&
           b.max.y <= max.y;
  }
  bool Intersects(const Box& b) const {
    return !(b.min.x > max.x || b.max.x < min.x || b.min.y > max.y ||
             b.max.y < min.y);
  }
  Box Intersection(const Box& b) const {
    Box r;
    r.min = {std::max(min.x, b.min.x), std::max(min.y, b.min.y)};
    r.max = {std::min(max.x, b.max.x), std::min(max.y, b.max.y)};
    return r;
  }
  Box Expanded(double margin) const {
    return Box(min.x - margin, min.y - margin, max.x + margin, max.y + margin);
  }

  /// Minimum squared distance from a point to this box (0 if inside).
  double Distance2To(const Vec2& p) const {
    const double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    const double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    return dx * dx + dy * dy;
  }
  double DistanceTo(const Vec2& p) const { return std::sqrt(Distance2To(p)); }

  /// Maximum distance from a point to any corner of this box.
  double MaxCornerDistanceTo(const Vec2& p) const {
    double d2 = 0;
    for (const Vec2 c : {Vec2{min.x, min.y}, Vec2{min.x, max.y},
                         Vec2{max.x, min.y}, Vec2{max.x, max.y}}) {
      d2 = std::max(d2, p.Distance2To(c));
    }
    return std::sqrt(d2);
  }
};

}  // namespace spade
