// Exact 2-D geometric predicates. These are the "costly geometric tests"
// that SPADE's boundary index reduces to constant-time triangle tests
// (Section 4.3), and they also power the exact CPU baselines and the
// correctness oracle used by the test suite.
#pragma once

#include "geom/geometry.h"
#include "geom/vec2.h"

namespace spade {

/// Sign of the orientation of the triangle (a, b, c):
/// > 0 counter-clockwise, < 0 clockwise, == 0 collinear.
double Orient2D(const Vec2& a, const Vec2& b, const Vec2& c);

/// True if point p lies on the closed segment [a, b].
bool OnSegment(const Vec2& a, const Vec2& b, const Vec2& p);

/// True if closed segments [p1,p2] and [q1,q2] share at least one point.
bool SegmentsIntersect(const Vec2& p1, const Vec2& p2, const Vec2& q1,
                       const Vec2& q2);

/// True if point p lies inside or on the triangle (a, b, c).
bool PointInTriangle(const Vec2& a, const Vec2& b, const Vec2& c,
                     const Vec2& p);

/// True if segment [p, q] intersects triangle (a, b, c) (boundary counts).
bool SegmentIntersectsTriangle(const Vec2& p, const Vec2& q, const Vec2& a,
                               const Vec2& b, const Vec2& c);

/// True if triangles (a1,b1,c1) and (a2,b2,c2) share at least one point.
bool TrianglesIntersect(const Vec2& a1, const Vec2& b1, const Vec2& c1,
                        const Vec2& a2, const Vec2& b2, const Vec2& c2);

/// True if point p lies inside or on the ring (no closing duplicate vertex).
bool PointInRing(const std::vector<Vec2>& ring, const Vec2& p);

/// True if p lies inside the polygon (holes excluded, boundary counts).
bool PointInPolygon(const Polygon& poly, const Vec2& p);
bool PointInMultiPolygon(const MultiPolygon& mp, const Vec2& p);

/// True if segment [p, q] intersects the polygon (interior or boundary).
bool SegmentIntersectsPolygon(const Polygon& poly, const Vec2& p,
                              const Vec2& q);

/// True if the polyline intersects the polygon.
bool LineIntersectsPolygon(const Polygon& poly, const LineString& line);

/// True if the two polygons share at least one point (ST_INTERSECTS).
bool PolygonsIntersect(const Polygon& a, const Polygon& b);
bool MultiPolygonsIntersect(const MultiPolygon& a, const MultiPolygon& b);

/// Exact geometry-vs-polygon intersection dispatching on geometry type.
bool GeometryIntersectsPolygon(const Geometry& g, const MultiPolygon& poly);

// --- Distances -------------------------------------------------------------

/// Distance from point p to the closed segment [a, b].
double PointSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b);

/// Minimum distance between two closed segments.
double SegmentSegmentDistance(const Vec2& p1, const Vec2& p2, const Vec2& q1,
                              const Vec2& q2);

/// Distance from p to the polygon (0 when p is inside or on the boundary).
double PointPolygonDistance(const Polygon& poly, const Vec2& p);
double PointMultiPolygonDistance(const MultiPolygon& mp, const Vec2& p);

/// Distance from p to the polyline.
double PointLineStringDistance(const LineString& line, const Vec2& p);

/// Distance from p to an arbitrary geometry (exact; 0 inside polygons).
double PointGeometryDistance(const Geometry& g, const Vec2& p);

/// True if segment [a, b] touches the closed box.
bool SegmentIntersectsBox(const Box& box, const Vec2& a, const Vec2& b);

/// Minimum distance between the closed box and segment [a, b] (0 if they
/// touch).
double BoxSegmentDistance(const Box& box, const Vec2& a, const Vec2& b);

/// Maximum over the box's corners of the distance to segment [a, b]; since
/// distance-to-segment is convex this is the max over the whole box.
double BoxSegmentMaxDistance(const Box& box, const Vec2& a, const Vec2& b);

}  // namespace spade
