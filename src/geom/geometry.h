// Vector geometry types: point, polyline, polygon (with holes),
// multi-polygon, and a tagged-union Geometry value.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "geom/vec2.h"

namespace spade {

/// Identifier of a geometric object within a dataset.
using GeomId = uint32_t;
inline constexpr GeomId kInvalidGeomId = 0xFFFFFFFFu;

/// \brief An open polyline (the paper's "line" primitive).
struct LineString {
  std::vector<Vec2> points;

  Box Bounds() const {
    Box b;
    for (const auto& p : points) b.Extend(p);
    return b;
  }
  double Length() const {
    double len = 0;
    for (size_t i = 1; i < points.size(); ++i) {
      len += points[i - 1].DistanceTo(points[i]);
    }
    return len;
  }
};

/// \brief A simple polygon with optional holes.
///
/// The outer ring is in counter-clockwise order, holes clockwise; rings are
/// stored without a closing duplicate vertex.
struct Polygon {
  std::vector<Vec2> outer;
  std::vector<std::vector<Vec2>> holes;

  Box Bounds() const {
    Box b;
    for (const auto& p : outer) b.Extend(p);
    return b;
  }

  /// Signed area of a ring (positive if counter-clockwise).
  static double RingSignedArea(const std::vector<Vec2>& ring);

  /// Total area (outer minus holes).
  double Area() const;

  /// Arithmetic mean of the outer-ring vertices (used for grid assignment).
  Vec2 Centroid() const;

  /// Total vertex count across all rings.
  size_t NumVertices() const {
    size_t n = outer.size();
    for (const auto& h : holes) n += h.size();
    return n;
  }

  /// Put rings into canonical orientation (outer CCW, holes CW).
  void Normalize();

  /// Convenience: axis-aligned rectangle polygon.
  static Polygon FromBox(const Box& b);

  /// Convenience: regular n-gon approximating a circle.
  static Polygon Circle(Vec2 center, double radius, int segments = 32);
};

/// \brief A collection of polygons treated as a single object.
struct MultiPolygon {
  std::vector<Polygon> parts;

  Box Bounds() const {
    Box b;
    for (const auto& p : parts) b.Extend(p.Bounds());
    return b;
  }
  double Area() const {
    double a = 0;
    for (const auto& p : parts) a += p.Area();
    return a;
  }
  size_t NumVertices() const {
    size_t n = 0;
    for (const auto& p : parts) n += p.NumVertices();
    return n;
  }
};

/// Primitive class of a geometry; indexes the three canvas planes.
enum class GeomType : uint8_t { kPoint = 0, kLine = 1, kPolygon = 2 };

/// \brief A geometric object: point, polyline, or (multi)polygon.
class Geometry {
 public:
  Geometry() : v_(Vec2{}) {}
  explicit Geometry(Vec2 p) : v_(p) {}
  explicit Geometry(LineString l) : v_(std::move(l)) {}
  explicit Geometry(Polygon p) : v_(MultiPolygon{{std::move(p)}}) {}
  explicit Geometry(MultiPolygon mp) : v_(std::move(mp)) {}

  GeomType type() const {
    return static_cast<GeomType>(v_.index());
  }
  bool is_point() const { return type() == GeomType::kPoint; }
  bool is_line() const { return type() == GeomType::kLine; }
  bool is_polygon() const { return type() == GeomType::kPolygon; }

  const Vec2& point() const { return std::get<Vec2>(v_); }
  const LineString& line() const { return std::get<LineString>(v_); }
  const MultiPolygon& polygon() const { return std::get<MultiPolygon>(v_); }
  MultiPolygon& polygon() { return std::get<MultiPolygon>(v_); }

  Box Bounds() const;
  Vec2 Centroid() const;
  size_t NumVertices() const;
  /// Approximate in-memory footprint in bytes (used for I/O accounting).
  size_t ByteSize() const;

 private:
  std::variant<Vec2, LineString, MultiPolygon> v_;
};

}  // namespace spade
