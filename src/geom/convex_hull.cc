#include "geom/convex_hull.h"

#include <algorithm>

namespace spade {

std::vector<Vec2> ConvexHull(std::vector<Vec2> pts) {
  std::sort(pts.begin(), pts.end(), [](const Vec2& a, const Vec2& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const size_t n = pts.size();
  if (n < 3) return pts;

  std::vector<Vec2> hull(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 &&
           (hull[k - 1] - hull[k - 2]).Cross(pts[i] - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  // Upper hull.
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower &&
           (hull[k - 1] - hull[k - 2]).Cross(pts[i] - hull[k - 2]) <= 0) {
      --k;
    }
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return hull;
}

Polygon ConvexHullPolygon(const std::vector<Geometry>& geoms) {
  std::vector<const Geometry*> ptrs;
  ptrs.reserve(geoms.size());
  for (const auto& g : geoms) ptrs.push_back(&g);
  return ConvexHullPolygon(ptrs);
}

Polygon ConvexHullPolygon(const std::vector<const Geometry*>& geoms) {
  std::vector<Vec2> pts;
  for (const Geometry* gp : geoms) {
    const Geometry& g = *gp;
    switch (g.type()) {
      case GeomType::kPoint:
        pts.push_back(g.point());
        break;
      case GeomType::kLine:
        pts.insert(pts.end(), g.line().points.begin(), g.line().points.end());
        break;
      case GeomType::kPolygon:
        for (const auto& part : g.polygon().parts) {
          pts.insert(pts.end(), part.outer.begin(), part.outer.end());
        }
        break;
    }
  }
  Polygon p;
  p.outer = ConvexHull(std::move(pts));
  // Degenerate hulls (point / segment) are inflated to a tiny box so they
  // remain valid polygonal constraints for the GPU filter step.
  if (p.outer.size() < 3) {
    Box b;
    for (const auto& v : p.outer) b.Extend(v);
    if (p.outer.empty()) return p;
    const double eps = 1e-9 + 1e-12 * (std::abs(b.min.x) + std::abs(b.max.y));
    p = Polygon::FromBox(b.Expanded(eps));
  }
  return p;
}

}  // namespace spade
