// Coordinate-system projections. SPADE converts degree-based EPSG:4326
// coordinates to meter-based EPSG:3857 (web mercator) in the vertex shader
// for distance and kNN queries (Sections 4.2, 5.1).
#pragma once

#include "geom/geometry.h"
#include "geom/vec2.h"

namespace spade {

/// Earth radius used by EPSG:3857, in meters.
inline constexpr double kEarthRadiusMeters = 6378137.0;

/// EPSG:4326 (lon, lat in degrees) -> EPSG:3857 (x, y in meters).
Vec2 LonLatToWebMercator(const Vec2& lonlat);

/// EPSG:3857 (meters) -> EPSG:4326 (lon, lat in degrees).
Vec2 WebMercatorToLonLat(const Vec2& xy);

/// Project every vertex of a geometry to web mercator.
Geometry ProjectToWebMercator(const Geometry& g);
Polygon ProjectToWebMercator(const Polygon& p);

/// Great-circle distance between two (lon, lat) points, in meters.
double HaversineMeters(const Vec2& lonlat_a, const Vec2& lonlat_b);

}  // namespace spade
