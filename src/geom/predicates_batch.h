// Lane-parallel batch forms of the exact tests the boundary index runs per
// boundary pixel (ROADMAP item 1): point-in-triangle and point-to-segment
// distance over structure-of-arrays coordinate batches.
//
// Both are bit-identical to their scalar predicates at every dispatch tier
// (common/simd.h). PointSegmentDistancesBatch performs the exact per-lane
// operation sequence of PointSegmentDistance (no FMA contraction).
// PointInTrianglesBatch evaluates the three orientation determinants in
// double with a Shewchuk-style floating-point error filter; any lane whose
// determinant signs the filter cannot certify falls back to the scalar
// long-double PointInTriangle, so the batch answer always equals the scalar
// one. tests/simd_kernel_test.cc differential-tests both over adversarial
// (near-degenerate, denormal, huge) inputs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "geom/vec2.h"

namespace spade {

/// out[i] = PointInTriangle({ax[i],ay[i]}, {bx[i],by[i]}, {cx[i],cy[i]}, p)
/// for i in [0, n), as 0/1 bytes.
void PointInTrianglesBatch(const double* ax, const double* ay,
                           const double* bx, const double* by,
                           const double* cx, const double* cy, size_t n,
                           const Vec2& p, uint8_t* out);

/// out[i] = PointSegmentDistance(p, {ax[i],ay[i]}, {bx[i],by[i]}) for i in
/// [0, n), bit-identical to the scalar predicate.
void PointSegmentDistancesBatch(const Vec2& p, const double* ax,
                                const double* ay, const double* bx,
                                const double* by, size_t n, double* out);

namespace geom_simd_detail {
using PointInTrianglesFn = void (*)(const double*, const double*,
                                    const double*, const double*,
                                    const double*, const double*, size_t,
                                    const Vec2&, uint8_t*);
using PointSegmentDistancesFn = void (*)(const Vec2&, const double*,
                                         const double*, const double*,
                                         const double*, size_t, double*);
/// Defined in predicates_batch_avx2.cc; null when the build lacks -mavx2.
PointInTrianglesFn Avx2PointInTriangles();
PointSegmentDistancesFn Avx2PointSegmentDistances();
}  // namespace geom_simd_detail

}  // namespace spade
