// Scalar twins and tier dispatch for the batch predicates; the AVX2 lanes
// live in predicates_batch_avx2.cc. The SSE2 tier runs the scalar twins:
// with only two double lanes there is no profitable layout for the
// three-determinant triangle test, and keeping the FP kernels to exactly
// two implementations (scalar oracle + AVX2) keeps the differential-test
// matrix honest.
#include "geom/predicates_batch.h"

#include "common/simd.h"
#include "geom/predicates.h"

namespace spade {

namespace {

void PointInTrianglesScalar(const double* ax, const double* ay,
                            const double* bx, const double* by,
                            const double* cx, const double* cy, size_t n,
                            const Vec2& p, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = PointInTriangle({ax[i], ay[i]}, {bx[i], by[i]}, {cx[i], cy[i]}, p)
                 ? 1
                 : 0;
  }
}

void PointSegmentDistancesScalar(const Vec2& p, const double* ax,
                                 const double* ay, const double* bx,
                                 const double* by, size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = PointSegmentDistance(p, {ax[i], ay[i]}, {bx[i], by[i]});
  }
}

}  // namespace

void PointInTrianglesBatch(const double* ax, const double* ay,
                           const double* bx, const double* by,
                           const double* cx, const double* cy, size_t n,
                           const Vec2& p, uint8_t* out) {
  if (simd::ActiveTier() == simd::Tier::kAVX2) {
    if (auto* fn = geom_simd_detail::Avx2PointInTriangles()) {
      fn(ax, ay, bx, by, cx, cy, n, p, out);
      return;
    }
  }
  PointInTrianglesScalar(ax, ay, bx, by, cx, cy, n, p, out);
}

void PointSegmentDistancesBatch(const Vec2& p, const double* ax,
                                const double* ay, const double* bx,
                                const double* by, size_t n, double* out) {
  if (simd::ActiveTier() == simd::Tier::kAVX2) {
    if (auto* fn = geom_simd_detail::Avx2PointSegmentDistances()) {
      fn(p, ax, ay, bx, by, n, out);
      return;
    }
  }
  PointSegmentDistancesScalar(p, ax, ay, bx, by, n, out);
}

}  // namespace spade
