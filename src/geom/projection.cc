#include "geom/projection.h"

#include <algorithm>
#include <cmath>

namespace spade {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
constexpr double kRadToDeg = 180.0 / M_PI;
// Web mercator is undefined at the poles; clamp like standard tools do.
constexpr double kMaxLat = 85.051128779806592;
}  // namespace

Vec2 LonLatToWebMercator(const Vec2& lonlat) {
  const double lon = lonlat.x;
  const double lat = std::clamp(lonlat.y, -kMaxLat, kMaxLat);
  const double x = kEarthRadiusMeters * lon * kDegToRad;
  const double y =
      kEarthRadiusMeters * std::log(std::tan(M_PI / 4.0 + lat * kDegToRad / 2.0));
  return {x, y};
}

Vec2 WebMercatorToLonLat(const Vec2& xy) {
  const double lon = xy.x / kEarthRadiusMeters * kRadToDeg;
  const double lat =
      (2.0 * std::atan(std::exp(xy.y / kEarthRadiusMeters)) - M_PI / 2.0) *
      kRadToDeg;
  return {lon, lat};
}

Polygon ProjectToWebMercator(const Polygon& p) {
  Polygon out;
  out.outer.reserve(p.outer.size());
  for (const auto& v : p.outer) out.outer.push_back(LonLatToWebMercator(v));
  out.holes.reserve(p.holes.size());
  for (const auto& h : p.holes) {
    std::vector<Vec2> hole;
    hole.reserve(h.size());
    for (const auto& v : h) hole.push_back(LonLatToWebMercator(v));
    out.holes.push_back(std::move(hole));
  }
  return out;
}

Geometry ProjectToWebMercator(const Geometry& g) {
  switch (g.type()) {
    case GeomType::kPoint:
      return Geometry(LonLatToWebMercator(g.point()));
    case GeomType::kLine: {
      LineString l;
      l.points.reserve(g.line().points.size());
      for (const auto& v : g.line().points) {
        l.points.push_back(LonLatToWebMercator(v));
      }
      return Geometry(std::move(l));
    }
    case GeomType::kPolygon: {
      MultiPolygon mp;
      mp.parts.reserve(g.polygon().parts.size());
      for (const auto& part : g.polygon().parts) {
        mp.parts.push_back(ProjectToWebMercator(part));
      }
      return Geometry(std::move(mp));
    }
  }
  return g;
}

double HaversineMeters(const Vec2& a, const Vec2& b) {
  const double lat1 = a.y * kDegToRad, lat2 = b.y * kDegToRad;
  const double dlat = lat2 - lat1;
  const double dlon = (b.x - a.x) * kDegToRad;
  const double s = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(s)));
}

}  // namespace spade
