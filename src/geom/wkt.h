// Minimal WKT (well-known text) reader/writer covering the geometry types
// the engine stores: POINT, LINESTRING, POLYGON, MULTIPOLYGON.
#pragma once

#include <string>

#include "common/status.h"
#include "geom/geometry.h"

namespace spade {

/// Parse a WKT string into a Geometry.
Result<Geometry> ParseWkt(const std::string& text);

/// Serialize a Geometry to WKT.
std::string ToWkt(const Geometry& g);

}  // namespace spade
