#include "geom/wkt.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace spade {

namespace {

class WktParser {
 public:
  explicit WktParser(const std::string& text) : s_(text) {}

  Result<Geometry> Parse() {
    SkipSpace();
    std::string tag = ReadWord();
    for (auto& c : tag) c = static_cast<char>(std::toupper(c));
    if (tag == "POINT") {
      SPADE_RETURN_NOT_OK(Expect('('));
      Vec2 p;
      SPADE_RETURN_NOT_OK(ReadCoord(&p));
      SPADE_RETURN_NOT_OK(Expect(')'));
      return Geometry(p);
    }
    if (tag == "LINESTRING") {
      LineString l;
      SPADE_RETURN_NOT_OK(ReadCoordList(&l.points));
      return Geometry(std::move(l));
    }
    if (tag == "POLYGON") {
      Polygon poly;
      SPADE_RETURN_NOT_OK(ReadPolygonBody(&poly));
      return Geometry(std::move(poly));
    }
    if (tag == "MULTIPOLYGON") {
      MultiPolygon mp;
      SPADE_RETURN_NOT_OK(Expect('('));
      for (;;) {
        Polygon poly;
        SPADE_RETURN_NOT_OK(ReadPolygonBody(&poly));
        mp.parts.push_back(std::move(poly));
        SkipSpace();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SPADE_RETURN_NOT_OK(Expect(')'));
      return Geometry(std::move(mp));
    }
    return Status::InvalidArgument("unsupported WKT tag: " + tag);
  }

 private:
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  std::string ReadWord() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < s_.size() && std::isalpha(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return s_.substr(start, pos_ - start);
  }

  Status Expect(char c) {
    SkipSpace();
    if (Peek() != c) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  Status ReadCoord(Vec2* out) {
    SkipSpace();
    char* end = nullptr;
    out->x = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) {
      return Status::InvalidArgument("expected number at offset " +
                                     std::to_string(pos_));
    }
    pos_ = static_cast<size_t>(end - s_.c_str());
    SkipSpace();
    out->y = std::strtod(s_.c_str() + pos_, &end);
    if (end == s_.c_str() + pos_) {
      return Status::InvalidArgument("expected number at offset " +
                                     std::to_string(pos_));
    }
    pos_ = static_cast<size_t>(end - s_.c_str());
    return Status::OK();
  }

  Status ReadCoordList(std::vector<Vec2>* out) {
    SPADE_RETURN_NOT_OK(Expect('('));
    for (;;) {
      Vec2 p;
      SPADE_RETURN_NOT_OK(ReadCoord(&p));
      out->push_back(p);
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    return Expect(')');
  }

  Status ReadPolygonBody(Polygon* poly) {
    SPADE_RETURN_NOT_OK(Expect('('));
    bool first = true;
    for (;;) {
      std::vector<Vec2> ring;
      SPADE_RETURN_NOT_OK(ReadCoordList(&ring));
      // WKT rings repeat the first vertex at the end; drop the duplicate.
      if (ring.size() > 1 && ring.front() == ring.back()) ring.pop_back();
      if (first) {
        poly->outer = std::move(ring);
        first = false;
      } else {
        poly->holes.push_back(std::move(ring));
      }
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    SPADE_RETURN_NOT_OK(Expect(')'));
    poly->Normalize();
    return Status::OK();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

void WriteRing(std::ostringstream& os, const std::vector<Vec2>& ring) {
  os << '(';
  for (size_t i = 0; i < ring.size(); ++i) {
    if (i > 0) os << ", ";
    os << ring[i].x << ' ' << ring[i].y;
  }
  if (!ring.empty()) os << ", " << ring[0].x << ' ' << ring[0].y;
  os << ')';
}

void WritePolygonBody(std::ostringstream& os, const Polygon& p) {
  os << '(';
  WriteRing(os, p.outer);
  for (const auto& h : p.holes) {
    os << ", ";
    WriteRing(os, h);
  }
  os << ')';
}

}  // namespace

Result<Geometry> ParseWkt(const std::string& text) {
  WktParser parser(text);
  return parser.Parse();
}

std::string ToWkt(const Geometry& g) {
  std::ostringstream os;
  os.precision(17);
  switch (g.type()) {
    case GeomType::kPoint:
      os << "POINT (" << g.point().x << ' ' << g.point().y << ')';
      break;
    case GeomType::kLine: {
      os << "LINESTRING (";
      const auto& pts = g.line().points;
      for (size_t i = 0; i < pts.size(); ++i) {
        if (i > 0) os << ", ";
        os << pts[i].x << ' ' << pts[i].y;
      }
      os << ')';
      break;
    }
    case GeomType::kPolygon: {
      const auto& mp = g.polygon();
      if (mp.parts.size() == 1) {
        os << "POLYGON ";
        WritePolygonBody(os, mp.parts[0]);
      } else {
        os << "MULTIPOLYGON (";
        for (size_t i = 0; i < mp.parts.size(); ++i) {
          if (i > 0) os << ", ";
          WritePolygonBody(os, mp.parts[i]);
        }
        os << ')';
      }
      break;
    }
  }
  return os.str();
}

}  // namespace spade
