#include "geom/triangulate.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "geom/predicates.h"

namespace spade {

namespace {

// Doubly linked list node used by the ear-clipping loop.
struct Node {
  Vec2 p;
  int prev = -1;
  int next = -1;
};

double Cross(const Vec2& o, const Vec2& a, const Vec2& b) {
  return (a - o).Cross(b - o);
}

bool PointInTriStrict(const Vec2& a, const Vec2& b, const Vec2& c,
                      const Vec2& p) {
  // Strict interior-or-edge test excluding the triangle's own vertices.
  if (p == a || p == b || p == c) return false;
  return PointInTriangle(a, b, c, p);
}

// Key for mapping an (unordered) coordinate edge to its triangle.
struct EdgeKey {
  uint64_t a_x, a_y, b_x, b_y;
  bool operator==(const EdgeKey& o) const {
    return a_x == o.a_x && a_y == o.a_y && b_x == o.b_x && b_y == o.b_y;
  }
};

uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

EdgeKey MakeEdgeKey(const Vec2& a, const Vec2& b) {
  uint64_t ax = BitsOf(a.x), ay = BitsOf(a.y);
  uint64_t bx = BitsOf(b.x), by = BitsOf(b.y);
  // Order endpoints canonically so (a,b) == (b,a).
  if (ax > bx || (ax == bx && ay > by)) {
    std::swap(ax, bx);
    std::swap(ay, by);
  }
  return {ax, ay, bx, by};
}

struct EdgeKeyHash {
  size_t operator()(const EdgeKey& k) const {
    uint64_t h = k.a_x * 0x9E3779B97F4A7C15ull;
    h ^= k.a_y + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= k.b_x + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= k.b_y + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

class EarClipper {
 public:
  explicit EarClipper(const Polygon& poly) {
    // Normalize orientation locally (outer CCW, holes CW).
    std::vector<Vec2> outer = poly.outer;
    if (Polygon::RingSignedArea(outer) < 0) {
      std::reverse(outer.begin(), outer.end());
    }
    std::vector<std::vector<Vec2>> holes = poly.holes;
    for (auto& h : holes) {
      if (Polygon::RingSignedArea(h) > 0) std::reverse(h.begin(), h.end());
    }

    int head = LinkRing(outer);
    if (head < 0) return;

    // Eliminate holes by splicing each into the outer loop, processed
    // left-to-right by their leftmost vertex (mirror of earcut's approach).
    std::vector<std::pair<double, std::vector<Vec2>*>> order;
    for (auto& h : holes) {
      if (h.size() < 3) continue;
      double minx = h[0].x;
      for (const auto& p : h) minx = std::min(minx, p.x);
      order.emplace_back(minx, &h);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [minx, hole] : order) {
      (void)minx;
      head = SpliceHole(head, *hole);
    }
    head_ = head;
  }

  void Run(std::vector<Triangle>* out) {
    if (head_ < 0) return;
    int ear = head_;
    int remaining = CountLoop(head_);
    int stall = 0;
    while (remaining > 3) {
      const Node& n = nodes_[ear];
      if (IsEar(ear)) {
        out->push_back({nodes_[n.prev].p, n.p, nodes_[n.next].p});
        // Unlink ear.
        nodes_[n.prev].next = n.next;
        nodes_[n.next].prev = n.prev;
        ear = n.next;
        --remaining;
        stall = 0;
        continue;
      }
      ear = n.next;
      if (++stall > remaining) {
        // Degenerate remainder (collinear chains, self-touching bridges):
        // clip the least-bad vertex to guarantee progress.
        int best = ear;
        double best_area = -1;
        int cur = ear;
        for (int i = 0; i < remaining; ++i) {
          const Node& c = nodes_[cur];
          const double area =
              std::abs(Cross(nodes_[c.prev].p, c.p, nodes_[c.next].p));
          if (Cross(nodes_[c.prev].p, c.p, nodes_[c.next].p) >= 0 &&
              area > best_area) {
            best_area = area;
            best = cur;
          }
          cur = c.next;
        }
        const Node& b = nodes_[best];
        if (best_area > 0) {
          out->push_back({nodes_[b.prev].p, b.p, nodes_[b.next].p});
        }
        nodes_[b.prev].next = b.next;
        nodes_[b.next].prev = b.prev;
        ear = b.next;
        --remaining;
        stall = 0;
      }
    }
    if (remaining == 3) {
      const Node& n = nodes_[ear];
      const Vec2 a = nodes_[n.prev].p, b = n.p, c = nodes_[n.next].p;
      if (std::abs(Cross(a, b, c)) > 0) out->push_back({a, b, c});
    }
  }

 private:
  int LinkRing(const std::vector<Vec2>& ring) {
    if (ring.size() < 3) return -1;
    const int base = static_cast<int>(nodes_.size());
    const int n = static_cast<int>(ring.size());
    for (int i = 0; i < n; ++i) {
      Node node;
      node.p = ring[i];
      node.prev = base + (i + n - 1) % n;
      node.next = base + (i + 1) % n;
      nodes_.push_back(node);
    }
    return base;
  }

  int CountLoop(int head) const {
    int count = 1;
    for (int cur = nodes_[head].next; cur != head; cur = nodes_[cur].next) {
      ++count;
    }
    return count;
  }

  // Splice a hole ring into the outer loop via a two-way bridge from the
  // hole's leftmost vertex to a visible outer vertex.
  int SpliceHole(int outer_head, const std::vector<Vec2>& hole) {
    const int hole_head = LinkRing(hole);
    if (hole_head < 0) return outer_head;

    // Leftmost hole vertex.
    int hv = hole_head;
    for (int cur = nodes_[hole_head].next; cur != hole_head;
         cur = nodes_[cur].next) {
      if (nodes_[cur].p.x < nodes_[hv].p.x) hv = cur;
    }
    const Vec2 hp = nodes_[hv].p;

    // Find the outer vertex to bridge to: the candidate whose segment to the
    // hole vertex crosses no outer edge, preferring the closest such vertex.
    int best = -1;
    double best_d2 = std::numeric_limits<double>::max();
    int cur = outer_head;
    do {
      const Vec2 op = nodes_[cur].p;
      const double d2 = op.Distance2To(hp);
      if (d2 < best_d2 && BridgeIsClear(outer_head, cur, hv)) {
        best_d2 = d2;
        best = cur;
      }
      cur = nodes_[cur].next;
    } while (cur != outer_head);
    if (best < 0) best = outer_head;  // fall back: still splice

    // Duplicate the two bridge endpoints and rewire:
    //   ... -> best -> hv -> (hole loop) -> hv' -> best' -> ...
    const int best2 = static_cast<int>(nodes_.size());
    nodes_.push_back(nodes_[best]);
    const int hv2 = static_cast<int>(nodes_.size());
    nodes_.push_back(nodes_[hv]);

    nodes_[hv2].next = best2;
    nodes_[hv2].prev = nodes_[hv].prev;
    nodes_[nodes_[hv].prev].next = hv2;

    nodes_[best2].prev = hv2;
    nodes_[best2].next = nodes_[best].next;
    nodes_[nodes_[best].next].prev = best2;

    nodes_[best].next = hv;
    nodes_[hv].prev = best;

    return outer_head;
  }

  bool BridgeIsClear(int outer_head, int outer_v, int hole_v) const {
    const Vec2 a = nodes_[outer_v].p;
    const Vec2 b = nodes_[hole_v].p;
    // Against the outer loop (which already contains previously spliced
    // holes), skipping the two edges incident to the outer endpoint.
    int cur = outer_head;
    do {
      const int nxt = nodes_[cur].next;
      if (cur != outer_v && nxt != outer_v) {
        if (SegmentsIntersect(a, b, nodes_[cur].p, nodes_[nxt].p)) {
          return false;
        }
      }
      cur = nxt;
    } while (cur != outer_head);
    // Against the hole's own ring: the nearest outer vertex can sit on the
    // far side of the hole, in which case the candidate bridge would cut
    // straight through it and the spliced loop would self-intersect.
    cur = hole_v;
    do {
      const int nxt = nodes_[cur].next;
      if (cur != hole_v && nxt != hole_v) {
        if (SegmentsIntersect(a, b, nodes_[cur].p, nodes_[nxt].p)) {
          return false;
        }
      }
      cur = nxt;
    } while (cur != hole_v);
    return true;
  }

  bool IsEar(int i) const {
    const Node& n = nodes_[i];
    const Vec2 a = nodes_[n.prev].p, b = n.p, c = nodes_[n.next].p;
    if (Cross(a, b, c) <= 0) return false;  // reflex or collinear
    // No other vertex of the remaining loop inside the candidate ear.
    int cur = nodes_[n.next].next;
    while (cur != n.prev) {
      if (PointInTriStrict(a, b, c, nodes_[cur].p)) return false;
      cur = nodes_[cur].next;
    }
    return true;
  }

  std::vector<Node> nodes_;
  int head_ = -1;
};

void MapEdgesToTriangles(const Polygon& poly,
                         const std::vector<Triangle>& tris,
                         size_t tri_offset, Triangulation* out) {
  std::unordered_map<EdgeKey, int32_t, EdgeKeyHash> edge_map;
  for (size_t t = 0; t < tris.size(); ++t) {
    const Triangle& tri = tris[t];
    edge_map[MakeEdgeKey(tri.a, tri.b)] = static_cast<int32_t>(tri_offset + t);
    edge_map[MakeEdgeKey(tri.b, tri.c)] = static_cast<int32_t>(tri_offset + t);
    edge_map[MakeEdgeKey(tri.c, tri.a)] = static_cast<int32_t>(tri_offset + t);
  }
  auto emit_ring = [&](const std::vector<Vec2>& ring) {
    const size_t n = ring.size();
    for (size_t i = 0; i < n; ++i) {
      const Vec2& a = ring[i];
      const Vec2& b = ring[(i + 1) % n];
      auto it = edge_map.find(MakeEdgeKey(a, b));
      out->edges.push_back({a, b});
      out->edge_triangle.push_back(it == edge_map.end() ? -1 : it->second);
    }
  };
  emit_ring(poly.outer);
  for (const auto& h : poly.holes) emit_ring(h);
}

}  // namespace

Triangulation Triangulate(const Polygon& poly) {
  Triangulation result;
  if (poly.outer.size() < 3) return result;
  EarClipper clipper(poly);
  clipper.Run(&result.triangles);
  MapEdgesToTriangles(poly, result.triangles, 0, &result);
  return result;
}

Triangulation Triangulate(const MultiPolygon& mp) {
  Triangulation result;
  for (const auto& part : mp.parts) {
    if (part.outer.size() < 3) continue;
    std::vector<Triangle> tris;
    EarClipper clipper(part);
    clipper.Run(&tris);
    const size_t offset = result.triangles.size();
    result.triangles.insert(result.triangles.end(), tris.begin(), tris.end());
    MapEdgesToTriangles(part, tris, offset, &result);
  }
  return result;
}

}  // namespace spade
