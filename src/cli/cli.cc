#include "cli/cli.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/stopwatch.h"
#include "obs/build_info.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slowlog.h"
#include "obs/statements.h"
#include "obs/trace.h"
#include "service/wire.h"
#include "datagen/realdata.h"
#include "datagen/spider.h"
#include "engine/tuning.h"
#include "geom/wkt.h"
#include "storage/geo_table.h"
#include "storage/io.h"
#include "storage/sql.h"

namespace spade {

namespace {

constexpr const char* kHelp = R"(commands:
  gen <kind> <n> as <name>     generate data; kinds: uniform-points,
                               gaussian-points, uniform-boxes, gaussian-boxes,
                               parcels, taxi, tweets, neighborhoods, census,
                               counties, zipcodes, buildings, countries
  load csv|wkt <path> as <name>
  save csv|wkt <name> <path>
  store <name> <dir>           write <name> as on-disk grid blocks
  open <dir> as <name>         open a stored dataset
  list                         list datasets (objects, cells, zoom)
  select <name> <WKT>          spatial selection (polygon constraint)
  contains <name> <WKT>        containment selection
  range <name> x0 y0 x1 y1     rectangular range selection
  join <polys> <other>         spatial join
  distance <name> x y r [m]    distance selection ('m' = meters/mercator)
  djoin <left> <right> r [m]   distance join
  agg <data> <constraints>     aggregation (top-5 counts)
  knn <name> x y k [m]         k nearest neighbours
                               (query commands accept --trace-out=<file>.json
                               to export a Chrome/Perfetto trace of the run)
  ingest new <name> x0 y0 x1 y1 [zoom] [dir=<path>]
                               create a streaming-ingest point dataset
  ingest from <csv> as <name> [zoom]
                               create one from a CSV (extent auto-scanned)
                               and ingest the file's rows
  ingest <name> x y [x y ...]  append a batch (seals one epoch)
  ingest csv <name> <path>     tail a CSV: append lines added since the
                               last `ingest csv` of that file
  ingest status <name>         epoch / rows / merge accounting
  ingest merge <name>          force-merge all delta buffers to blocks
  register <name>              store dataset as a SQL (id, wkt) table
  sql <statement>              run SQL against the catalog
  explain [--json] <query>     EXPLAIN ANALYZE: run the query, print its
                               plan profile (per-stage calls, wall time,
                               pass/fragment counts) instead of the result
  slowlog [json|clear]         slow-query log (worst queries + profiles)
  slowlog threshold <seconds>  always capture queries slower than this
  statements [json|clear]      per-fingerprint workload statistics
                               (calls, typed errors, latency percentiles,
                               passes/fragments/cache hits per query shape)
  trace [<request-id>|list]    retained flight-recorder trace (Chrome JSON);
                               session queries get ids q1, q2, ...
  stats                        breakdown of the last query
  metrics                      Prometheus-format metrics snapshot
  retry <attempts> [base_ms]   I/O retry policy for disk-backed datasets
  timeout <ms>|off             session deadline for query commands; a query
                               over budget stops at its next cell pass with
                               a typed DeadlineExceeded error
  failpoint list               show armed failpoints
  failpoint clear              disarm all failpoints
  failpoint <name> <action>    arm a failpoint, e.g. `failpoint io.read fail(io,2)`
                               action: fail(code[,times[,skip]]) | prob(p[,code]) | off
  help                         this text)";

std::vector<std::string> Words(const std::string& line) {
  std::istringstream is(line);
  std::vector<std::string> words;
  std::string w;
  while (is >> w) words.push_back(w);
  return words;
}

/// Rest of the line after the first `n` whitespace-separated words.
std::string Rest(const std::string& line, size_t n) {
  size_t pos = 0;
  for (size_t i = 0; i < n; ++i) {
    while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
    while (pos < line.size() && !std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  }
  while (pos < line.size() && std::isspace(static_cast<unsigned char>(line[pos]))) ++pos;
  return line.substr(pos);
}

Result<double> ToDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument("expected a number, got '" + s + "'");
  }
  return v;
}

Result<size_t> ToCount(const std::string& s) {
  SPADE_ASSIGN_OR_RETURN(double v, ToDouble(s));
  if (v < 0) return Status::InvalidArgument("expected a non-negative count");
  return static_cast<size_t>(v);
}

std::string DescribeSelection(const SelectionResult& r) {
  std::ostringstream os;
  os << r.ids.size() << " objects";
  if (!r.ids.empty()) {
    os << " (ids:";
    for (size_t i = 0; i < std::min<size_t>(8, r.ids.size()); ++i) {
      os << ' ' << r.ids[i];
    }
    if (r.ids.size() > 8) os << " ...";
    os << ')';
  }
  os << " in " << r.stats.TotalSeconds() << "s";
  return os.str();
}

Result<MultiPolygon> ParseConstraint(const std::string& wkt) {
  SPADE_ASSIGN_OR_RETURN(Geometry g, ParseWkt(wkt));
  if (!g.is_polygon()) {
    return Status::InvalidArgument("constraint must be POLYGON/MULTIPOLYGON");
  }
  return g.polygon();
}

bool IsQueryCommand(const std::string& cmd) {
  return cmd == "select" || cmd == "contains" || cmd == "range" ||
         cmd == "join" || cmd == "distance" || cmd == "djoin" ||
         cmd == "agg" || cmd == "knn" || cmd == "sql";
}

/// FNV-1a over the normalized (whitespace-collapsed) command words — the
/// statement fingerprint of CLI-only commands the wire grammar cannot
/// parse (`agg`). Never zero (zero means "no fingerprint").
uint64_t TextFingerprint(const std::vector<std::string>& words) {
  uint64_t h = 1469598103934665603ull;
  for (const auto& w : words) {
    for (char c : w) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    h ^= 0x20;
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

}  // namespace

CliSession::CliSession(SpadeConfig config) : engine_(config) {}

Result<CellSource*> CliSession::FindSource(const std::string& name) {
  auto it = sources_.find(name);
  if (it == sources_.end()) {
    return Status::NotFound("no dataset named '" + name +
                            "' (see `list`, `gen`, `load`)");
  }
  if (it->second.ingest != nullptr) return it->second.ingest.get();
  return it->second.source.get();
}

Result<std::string> CliSession::AddDataset(const std::string& name,
                                           SpatialDataset dataset) {
  if (sources_.count(name) > 0) {
    return Status::InvalidArgument("dataset '" + name + "' already exists");
  }
  const size_t n = dataset.size();
  NamedSource ns;
  ns.dataset = dataset;
  ns.has_dataset = true;
  ns.source = MakeTunedInMemorySource(name, std::move(dataset),
                                      engine_.config());
  const size_t cells = ns.source->index().num_cells();
  sources_[name] = std::move(ns);
  std::ostringstream os;
  os << name << ": " << n << " objects, " << cells << " grid cells";
  return os.str();
}

Result<std::string> CliSession::Execute(const std::string& line) {
  // `explain [--json] <query>` wraps a query command: the query runs as
  // usual (stats, histograms, slow-query capture), but the printed result
  // is the plan profile instead of the query output.
  std::string effective = line;
  bool explain = false;
  bool explain_json = false;
  {
    const auto head = Words(effective);
    if (!head.empty() && head[0] == "explain") {
      size_t skip = 1;
      if (head.size() > 1 && head[1] == "--json") {
        explain_json = true;
        skip = 2;
      }
      effective = Rest(effective, skip);
      explain = true;
      const auto inner = Words(effective);
      if (inner.empty() || !IsQueryCommand(inner[0]) || inner[0] == "sql") {
        return Status::InvalidArgument(
            "usage: explain [--json] <query command> "
            "(select/contains/range/join/distance/djoin/agg/knn)");
      }
    }
  }

  const auto words = Words(effective);
  const bool is_query = !words.empty() && IsQueryCommand(words[0]);

  // Query commands accept --trace-out=<file>.json anywhere on the line:
  // spans from this one command are recorded and exported on completion.
  std::string trace_out;
  if (is_query) {
    const std::string kFlag = "--trace-out=";
    const size_t pos = effective.find(kFlag);
    if (pos != std::string::npos) {
      size_t end = effective.find_first_of(" \t", pos);
      if (end == std::string::npos) end = effective.size();
      trace_out = effective.substr(pos + kFlag.size(), end - pos - kFlag.size());
      if (trace_out.empty()) {
        return Status::InvalidArgument("usage: --trace-out=<file>.json");
      }
      effective.erase(pos, end - pos);
      // Fail before running the query, not after: a typo'd path should
      // cost nothing and exit with a typed I/O error.
      std::ofstream probe(trace_out, std::ios::app);
      if (!probe) {
        return Status::IOError("cannot write trace output '" + trace_out +
                               "' (check the directory exists and is "
                               "writable)");
      }
    }
  }

  // Plan-profile capture for every engine query command (SQL has no
  // engine spans). Near-zero overhead: spans already exist; the profile
  // adds a few tree-node updates per span, none per fragment.
  std::unique_ptr<obs::QueryProfile> profile;
  if (is_query && words[0] != "sql") {
    profile = std::make_unique<obs::QueryProfile>();
    std::string query = effective;
    while (!query.empty() && std::isspace(static_cast<unsigned char>(
                                 query.back()))) {
      query.pop_back();
    }
    profile->query = query;
    // Session-local id so `trace q<N>` can retrieve this run's spans.
    profile->request_id = "q" + std::to_string(++query_seq_);
    if (obs::FlightRecorder::Global().enabled()) {
      profile->EnableSpanCapture(4096);
    }
  }

  obs::Tracer& tracer = obs::Tracer::Global();
  const bool tracing = !trace_out.empty();
  if (tracing) {
    tracer.Clear();
    tracer.SetEnabled(true);
  }
  // Session deadline: each query command runs under a fresh token so one
  // slow query cannot eat the next one's budget.
  CancelToken deadline_token;
  if (is_query && words[0] != "sql" && session_timeout_ms_ > 0) {
    deadline_token.SetTimeout(session_timeout_ms_ / 1000.0);
    active_cancel_ = &deadline_token;
  }
  Stopwatch sw;
  auto r = [&]() -> Result<std::string> {
    if (profile != nullptr) {
      obs::ProfileScope attach(profile.get());
      return ExecuteCommand(effective);
    }
    return ExecuteCommand(effective);
  }();
  active_cancel_ = nullptr;
  const double elapsed = sw.ElapsedSeconds();
  if (tracing) {
    tracer.SetEnabled(false);
    const Status wrote = tracer.WriteChromeJson(trace_out);
    if (r.ok() && !wrote.ok()) return wrote;
    if (r.ok()) {
      r = r.value() + "\ntrace: " + std::to_string(tracer.size()) +
          " spans -> " + trace_out;
    }
  }
  if (is_query && r.ok()) {
    // A direct shell call never waits in an admission queue; recording the
    // zero keeps the stats output shape identical to the service's.
    queue_wait_hist_.Record(0.0);
    latency_hist_.Record(elapsed);
    if (words[0] != "sql") obs::PublishQueryStats(last_stats_);
  }
  if (profile != nullptr) {
    profile->stats = last_stats_;
    profile->total_seconds = elapsed;
    if (!r.ok()) profile->error = r.status().ToString();
    if (r.ok()) {
      obs::SlowQueryLog::Global().Record("", profile->query, elapsed,
                                         /*queue_wait_seconds=*/0.0,
                                         profile.get());
    }
    // Workload telemetry for the direct shell path, so `statements` and
    // `trace` answer here exactly like against a server. Commands the wire
    // grammar shares with the protocol get the same fingerprint a server
    // would compute; CLI-only ones (`agg`) hash their normalized text.
    if (obs::StatementStore::Global().enabled()) {
      obs::StatementUpdate u;
      auto parsed = wire::ParseRequestLine(profile->query);
      if (parsed.ok()) {
        u.fingerprint = wire::StatementFingerprint(parsed.value());
        u.kind = wire::RequestKindToken(parsed.value().kind);
        u.dataset = parsed.value().dataset;
        u.shape = wire::DescribeRequest(parsed.value());
      } else {
        u.fingerprint = TextFingerprint(words);
        u.kind = words[0] == "agg" ? "agg" : "query";
        u.dataset = words.size() > 1 ? words[1] : "";
        u.shape = profile->query;
      }
      u.outcome = obs::OutcomeForStatus(r.ok() ? Status::OK() : r.status());
      u.seconds = elapsed;
      if (r.ok()) {
        u.render_passes = last_stats_.render_passes;
        u.fragments = last_stats_.fragments;
        u.cells = last_stats_.cells_processed;
      }
      u.cache_hits =
          profile->SumArg("cache_hit") + profile->SumArg("cache_hits");
      obs::StatementStore::Global().Record(u);
    }
    if (profile->span_capture_enabled()) {
      obs::FlightRecorder::Global().Offer(
          profile->request_id, profile->query, elapsed, profile->error,
          profile->TakeCapturedSpans(), profile->truncated_spans());
    }
    last_profile_ = std::move(profile);
    if (explain && r.ok()) {
      return explain_json ? last_profile_->ToJson() : last_profile_->ToText();
    }
  }
  return r;
}

Result<std::string> CliSession::ExecuteCommand(const std::string& line) {
  const auto words = Words(line);
  if (words.empty()) return std::string();
  const std::string& cmd = words[0];

  if (cmd == "help") return std::string(kHelp);

  if (cmd == "gen") {
    if (words.size() != 5 || words[3] != "as") {
      return Status::InvalidArgument("usage: gen <kind> <n> as <name>");
    }
    SPADE_ASSIGN_OR_RETURN(size_t n, ToCount(words[2]));
    const std::string& kind = words[1];
    SpatialDataset ds;
    const uint64_t seed = 42;
    if (kind == "uniform-points") ds = GenerateUniformPoints(n, seed);
    else if (kind == "gaussian-points") ds = GenerateGaussianPoints(n, seed);
    else if (kind == "uniform-boxes") ds = GenerateUniformBoxes(n, seed);
    else if (kind == "gaussian-boxes") ds = GenerateGaussianBoxes(n, seed);
    else if (kind == "parcels") ds = GenerateParcels(n, seed);
    else if (kind == "taxi") ds = TaxiLikePoints(n, seed);
    else if (kind == "tweets") ds = TweetLikePoints(n, seed);
    else if (kind == "neighborhoods") ds = NeighborhoodLikePolygons(seed);
    else if (kind == "census") ds = CensusLikePolygons(seed);
    else if (kind == "counties") ds = CountyLikePolygons(seed);
    else if (kind == "zipcodes") ds = ZipcodeLikePolygons(seed);
    else if (kind == "buildings") ds = BuildingLikePolygons(n, seed);
    else if (kind == "countries") ds = CountryLikePolygons(seed);
    else return Status::InvalidArgument("unknown kind '" + kind + "'");
    ds.name = words[4];
    return AddDataset(words[4], std::move(ds));
  }

  if (cmd == "load") {
    if (words.size() != 5 || words[3] != "as") {
      return Status::InvalidArgument("usage: load csv|wkt <path> as <name>");
    }
    SpatialDataset ds;
    if (words[1] == "csv") {
      SPADE_ASSIGN_OR_RETURN(ds, LoadPointsCsv(words[2], words[4]));
    } else if (words[1] == "wkt") {
      SPADE_ASSIGN_OR_RETURN(ds, LoadWktFile(words[2], words[4]));
    } else {
      return Status::InvalidArgument("load format must be csv or wkt");
    }
    return AddDataset(words[4], std::move(ds));
  }

  if (cmd == "save") {
    if (words.size() != 4) {
      return Status::InvalidArgument("usage: save csv|wkt <name> <path>");
    }
    auto it = sources_.find(words[2]);
    if (it == sources_.end() || !it->second.has_dataset) {
      return Status::NotFound("no in-memory dataset '" + words[2] + "'");
    }
    if (words[1] == "csv") {
      SPADE_RETURN_NOT_OK(SavePointsCsv(it->second.dataset, words[3]));
    } else if (words[1] == "wkt") {
      SPADE_RETURN_NOT_OK(SaveWktFile(it->second.dataset, words[3]));
    } else {
      return Status::InvalidArgument("save format must be csv or wkt");
    }
    return "saved " + words[2] + " to " + words[3];
  }

  if (cmd == "store") {
    if (words.size() != 3) {
      return Status::InvalidArgument("usage: store <name> <dir>");
    }
    auto it = sources_.find(words[1]);
    if (it == sources_.end() || !it->second.has_dataset) {
      return Status::NotFound("no in-memory dataset '" + words[1] + "'");
    }
    auto disk = DiskSource::Create(words[2], it->second.dataset,
                                   engine_.config().EffectiveCellBytes(),
                                   engine_.config().device_memory_budget);
    SPADE_RETURN_NOT_OK(disk.status());
    disk.value()->set_retry_policy(retry_policy_);
    return "stored " + words[1] + " at " + words[2] + " (" +
           std::to_string(disk.value()->index().num_cells()) + " blocks)";
  }

  if (cmd == "open") {
    if (words.size() != 4 || words[2] != "as") {
      return Status::InvalidArgument("usage: open <dir> as <name>");
    }
    if (sources_.count(words[3]) > 0) {
      return Status::InvalidArgument("dataset '" + words[3] + "' exists");
    }
    auto disk =
        DiskSource::Open(words[1], engine_.config().device_memory_budget);
    SPADE_RETURN_NOT_OK(disk.status());
    disk.value()->set_retry_policy(retry_policy_);
    NamedSource ns;
    const size_t n = disk.value()->num_objects();
    ns.source = std::move(disk).value();
    sources_[words[3]] = std::move(ns);
    return words[3] + ": " + std::to_string(n) + " objects (disk)";
  }

  if (cmd == "list") {
    std::ostringstream os;
    for (const auto& [name, ns] : sources_) {
      const CellSource* src =
          ns.ingest != nullptr
              ? static_cast<const CellSource*>(ns.ingest.get())
              : ns.source.get();
      os << name << ": " << src->num_objects() << " objects, "
         << src->index().num_cells() << " cells, zoom " << src->index().zoom;
      if (ns.ingest != nullptr) {
        os << " (ingest, epoch " << ns.ingest->GetStats().epoch << ")";
      } else {
        os << (ns.has_dataset ? " (memory)" : " (disk)");
      }
      os << '\n';
    }
    if (sources_.empty()) return std::string("(no datasets)");
    std::string out = os.str();
    out.pop_back();
    return out;
  }

  if (cmd == "select" || cmd == "contains") {
    if (words.size() < 3) {
      return Status::InvalidArgument("usage: " + cmd + " <name> <WKT>");
    }
    SPADE_ASSIGN_OR_RETURN(CellSource * src, FindSource(words[1]));
    SPADE_ASSIGN_OR_RETURN(MultiPolygon poly, ParseConstraint(Rest(line, 2)));
    QueryOptions opts;
    opts.cancel = active_cancel_;
    SPADE_ASSIGN_OR_RETURN(
        SelectionResult r,
        cmd == "select" ? engine_.SpatialSelection(*src, poly, opts)
                        : engine_.ContainsSelection(*src, poly, opts));
    last_stats_ = r.stats;
    return DescribeSelection(r);
  }

  if (cmd == "range") {
    if (words.size() != 6) {
      return Status::InvalidArgument("usage: range <name> x0 y0 x1 y1");
    }
    SPADE_ASSIGN_OR_RETURN(CellSource * src, FindSource(words[1]));
    SPADE_ASSIGN_OR_RETURN(double x0, ToDouble(words[2]));
    SPADE_ASSIGN_OR_RETURN(double y0, ToDouble(words[3]));
    SPADE_ASSIGN_OR_RETURN(double x1, ToDouble(words[4]));
    SPADE_ASSIGN_OR_RETURN(double y1, ToDouble(words[5]));
    QueryOptions opts;
    opts.cancel = active_cancel_;
    SPADE_ASSIGN_OR_RETURN(
        SelectionResult r,
        engine_.RangeSelection(*src, Box(x0, y0, x1, y1), opts));
    last_stats_ = r.stats;
    return DescribeSelection(r);
  }

  if (cmd == "join") {
    if (words.size() != 3) {
      return Status::InvalidArgument("usage: join <polys> <other>");
    }
    SPADE_ASSIGN_OR_RETURN(CellSource * a, FindSource(words[1]));
    SPADE_ASSIGN_OR_RETURN(CellSource * b, FindSource(words[2]));
    QueryOptions opts;
    opts.cancel = active_cancel_;
    SPADE_ASSIGN_OR_RETURN(JoinResult r, engine_.SpatialJoin(*a, *b, opts));
    last_stats_ = r.stats;
    std::ostringstream os;
    os << r.pairs.size() << " pairs in " << r.stats.TotalSeconds() << "s";
    return os.str();
  }

  if (cmd == "distance" || cmd == "knn") {
    const bool knn = cmd == "knn";
    if (words.size() < 5) {
      return Status::InvalidArgument("usage: " + cmd + " <name> x y " +
                                     (knn ? "k" : "r") + " [m]");
    }
    SPADE_ASSIGN_OR_RETURN(CellSource * src, FindSource(words[1]));
    SPADE_ASSIGN_OR_RETURN(double x, ToDouble(words[2]));
    SPADE_ASSIGN_OR_RETURN(double y, ToDouble(words[3]));
    QueryOptions opts;
    opts.mercator = words.size() > 5 && words[5] == "m";
    opts.cancel = active_cancel_;
    if (knn) {
      SPADE_ASSIGN_OR_RETURN(size_t k, ToCount(words[4]));
      SPADE_ASSIGN_OR_RETURN(KnnResult r,
                             engine_.KnnSelection(*src, {x, y}, k, opts));
      last_stats_ = r.stats;
      std::ostringstream os;
      os << r.neighbors.size() << " neighbours";
      if (!r.neighbors.empty()) {
        os << ", nearest id " << r.neighbors.front().first << " at "
           << r.neighbors.front().second
           << ", furthest at " << r.neighbors.back().second;
      }
      return os.str();
    }
    SPADE_ASSIGN_OR_RETURN(double r, ToDouble(words[4]));
    SPADE_ASSIGN_OR_RETURN(
        SelectionResult res,
        engine_.DistanceSelection(*src, Geometry(Vec2{x, y}), r, opts));
    last_stats_ = res.stats;
    return DescribeSelection(res);
  }

  if (cmd == "djoin") {
    if (words.size() < 4) {
      return Status::InvalidArgument("usage: djoin <left> <right> r [m]");
    }
    SPADE_ASSIGN_OR_RETURN(CellSource * a, FindSource(words[1]));
    SPADE_ASSIGN_OR_RETURN(CellSource * b, FindSource(words[2]));
    SPADE_ASSIGN_OR_RETURN(double r, ToDouble(words[3]));
    QueryOptions opts;
    opts.mercator = words.size() > 4 && words[4] == "m";
    opts.cancel = active_cancel_;
    SPADE_ASSIGN_OR_RETURN(JoinResult res,
                           engine_.DistanceJoin(*a, *b, r, opts));
    last_stats_ = res.stats;
    std::ostringstream os;
    os << res.pairs.size() << " pairs in " << res.stats.TotalSeconds() << "s";
    return os.str();
  }

  if (cmd == "agg") {
    if (words.size() != 3) {
      return Status::InvalidArgument("usage: agg <data> <constraints>");
    }
    SPADE_ASSIGN_OR_RETURN(CellSource * data, FindSource(words[1]));
    SPADE_ASSIGN_OR_RETURN(CellSource * cons, FindSource(words[2]));
    QueryOptions opts;
    opts.cancel = active_cancel_;
    SPADE_ASSIGN_OR_RETURN(AggregationResult r,
                           engine_.SpatialAggregation(*data, *cons, opts));
    last_stats_ = r.stats;
    std::vector<std::pair<uint64_t, size_t>> top;
    for (size_t i = 0; i < r.counts.size(); ++i) {
      top.emplace_back(r.counts[i], i);
    }
    std::sort(top.rbegin(), top.rend());
    std::ostringstream os;
    os << "top constraints by count:";
    for (size_t i = 0; i < std::min<size_t>(5, top.size()); ++i) {
      os << ' ' << top[i].second << '=' << top[i].first;
    }
    return os.str();
  }

  if (cmd == "ingest") {
    if (words.size() < 2) {
      return Status::InvalidArgument(
          "usage: ingest new|from|csv|status|merge ... "
          "(or `ingest <name> x y [x y ...]` to append)");
    }
    const std::string& sub = words[1];
    const auto find_ingest = [&](const std::string& name)
        -> Result<std::shared_ptr<ingest::IngestSource>> {
      auto it = sources_.find(name);
      if (it == sources_.end() || it->second.ingest == nullptr) {
        return Status::NotFound("no ingest dataset named '" + name +
                                "' (see `ingest new` / `ingest from`)");
      }
      return it->second.ingest;
    };
    const auto register_ingest =
        [&](const std::string& name,
            const ingest::IngestOptions& opts) -> Result<std::string> {
      if (sources_.count(name) > 0) {
        return Status::InvalidArgument("dataset '" + name +
                                       "' already exists");
      }
      SPADE_ASSIGN_OR_RETURN(std::shared_ptr<ingest::IngestSource> src,
                             ingest::MakeIngestSource(name, opts));
      tailers_[name] = std::make_unique<ingest::CsvTailer>(src);
      NamedSource ns;
      ns.ingest = std::move(src);
      sources_[name] = std::move(ns);
      std::ostringstream os;
      os << name << ": ingest dataset over [" << opts.extent.min.x << ","
         << opts.extent.min.y << "]..[" << opts.extent.max.x << ","
         << opts.extent.max.y << "] zoom " << opts.zoom
         << (opts.merge_dir.empty() ? " (in-memory)"
                                    : " merging to " + opts.merge_dir);
      return os.str();
    };

    if (sub == "new") {
      if (words.size() < 7 || words.size() > 9) {
        return Status::InvalidArgument(
            "usage: ingest new <name> x0 y0 x1 y1 [zoom] [dir=<path>]");
      }
      ingest::IngestOptions opts;
      SPADE_ASSIGN_OR_RETURN(double x0, ToDouble(words[3]));
      SPADE_ASSIGN_OR_RETURN(double y0, ToDouble(words[4]));
      SPADE_ASSIGN_OR_RETURN(double x1, ToDouble(words[5]));
      SPADE_ASSIGN_OR_RETURN(double y1, ToDouble(words[6]));
      opts.extent = Box(x0, y0, x1, y1);
      for (size_t i = 7; i < words.size(); ++i) {
        if (words[i].rfind("dir=", 0) == 0) {
          opts.merge_dir = words[i].substr(4);
        } else {
          SPADE_ASSIGN_OR_RETURN(double z, ToDouble(words[i]));
          opts.zoom = static_cast<int>(z);
        }
      }
      return register_ingest(words[2], opts);
    }

    if (sub == "from") {
      if ((words.size() != 5 && words.size() != 6) || words[3] != "as") {
        return Status::InvalidArgument(
            "usage: ingest from <csv> as <name> [zoom]");
      }
      const std::string& path = words[2];
      // One scan to learn the stream's extent (ingest grids are declared
      // up front), then the tailer ingests the same rows as epoch 1.
      std::ifstream in(path);
      if (!in.is_open()) {
        return Status::IOError("cannot open " + path);
      }
      CsvLoadOptions scan;
      Box extent;
      bool any = false, first = true;
      std::string text_line;
      while (std::getline(in, text_line)) {
        Vec2 p;
        if (ParseCsvPointLine(text_line, scan, &p)) {
          if (!any) {
            extent = Box(p.x, p.y, p.x, p.y);
            any = true;
          } else {
            extent.Extend(p);
          }
        } else if (!first) {
          // Malformed mid-file rows are the tailer's business (counted and
          // limited there); the scan only needs the bounds.
        }
        first = false;
      }
      if (!any) {
        return Status::InvalidArgument(path + ": no valid points");
      }
      // A degenerate axis (single point / collinear stream) cannot grid.
      if (extent.max.x - extent.min.x <= 0) {
        extent.min.x -= 0.5;
        extent.max.x += 0.5;
      }
      if (extent.max.y - extent.min.y <= 0) {
        extent.min.y -= 0.5;
        extent.max.y += 0.5;
      }
      ingest::IngestOptions opts;
      opts.extent = extent;
      if (words.size() == 6) {
        SPADE_ASSIGN_OR_RETURN(double z, ToDouble(words[5]));
        opts.zoom = static_cast<int>(z);
      }
      SPADE_ASSIGN_OR_RETURN(std::string created,
                             register_ingest(words[4], opts));
      CsvLoadOptions csv;
      size_t skipped = 0;
      csv.skipped_rows = &skipped;
      SPADE_ASSIGN_OR_RETURN(size_t n,
                             tailers_[words[4]]->Tail(path, csv, nullptr));
      std::ostringstream os;
      os << created << "\ningested " << n << " rows from " << path;
      if (skipped > 0) os << " (skipped " << skipped << " malformed)";
      return os.str();
    }

    if (sub == "csv") {
      if (words.size() != 4) {
        return Status::InvalidArgument("usage: ingest csv <name> <path>");
      }
      SPADE_ASSIGN_OR_RETURN(std::shared_ptr<ingest::IngestSource> src,
                             find_ingest(words[2]));
      auto& tailer = tailers_[words[2]];
      if (tailer == nullptr) {
        tailer = std::make_unique<ingest::CsvTailer>(src);
      }
      CsvLoadOptions csv;
      size_t skipped = 0;
      csv.skipped_rows = &skipped;
      SPADE_ASSIGN_OR_RETURN(size_t n, tailer->Tail(words[3], csv, nullptr));
      std::ostringstream os;
      os << "appended " << n << " rows from " << words[3];
      if (skipped > 0) os << " (skipped " << skipped << " malformed)";
      os << " epoch=" << src->GetStats().epoch;
      return os.str();
    }

    if (sub == "status") {
      if (words.size() != 3) {
        return Status::InvalidArgument("usage: ingest status <name>");
      }
      SPADE_ASSIGN_OR_RETURN(std::shared_ptr<ingest::IngestSource> src,
                             find_ingest(words[2]));
      const ingest::IngestStats s = src->GetStats();
      std::ostringstream os;
      os << words[2] << ": epoch=" << s.epoch << " objects=" << s.num_objects
         << " cells=" << s.num_cells << " unmerged=" << s.unmerged_rows
         << " merged=" << s.merged_rows << " merges=" << s.merges
         << " merge_failures=" << s.merge_failures
         << " rejected=" << s.rejected_batches;
      return os.str();
    }

    if (sub == "merge") {
      if (words.size() != 3) {
        return Status::InvalidArgument("usage: ingest merge <name>");
      }
      SPADE_ASSIGN_OR_RETURN(std::shared_ptr<ingest::IngestSource> src,
                             find_ingest(words[2]));
      SPADE_RETURN_NOT_OK(src->ForceMerge());
      const ingest::IngestStats s = src->GetStats();
      return words[2] + ": merged (merged_rows=" +
             std::to_string(s.merged_rows) + ")";
    }

    // Append form: ingest <name> x y [x y ...]
    if (words.size() < 4 || (words.size() - 2) % 2 != 0) {
      return Status::InvalidArgument("usage: ingest <name> x y [x y ...]");
    }
    SPADE_ASSIGN_OR_RETURN(std::shared_ptr<ingest::IngestSource> src,
                           find_ingest(words[1]));
    std::vector<Vec2> pts;
    pts.reserve((words.size() - 2) / 2);
    for (size_t i = 2; i + 1 < words.size(); i += 2) {
      SPADE_ASSIGN_OR_RETURN(double x, ToDouble(words[i]));
      SPADE_ASSIGN_OR_RETURN(double y, ToDouble(words[i + 1]));
      pts.push_back({x, y});
    }
    SPADE_ASSIGN_OR_RETURN(uint64_t epoch, src->Append(pts, active_cancel_));
    return "appended " + std::to_string(pts.size()) +
           " epoch=" + std::to_string(epoch);
  }

  if (cmd == "register") {
    if (words.size() != 2) {
      return Status::InvalidArgument("usage: register <name>");
    }
    auto it = sources_.find(words[1]);
    if (it == sources_.end() || !it->second.has_dataset) {
      return Status::NotFound("no in-memory dataset '" + words[1] + "'");
    }
    SPADE_RETURN_NOT_OK(RegisterDataset(&engine_.catalog(),
                                        it->second.dataset));
    return "registered table " + words[1];
  }

  if (cmd == "sql") {
    const std::string stmt = Rest(line, 1);
    if (stmt.empty()) return Status::InvalidArgument("usage: sql <statement>");
    SPADE_ASSIGN_OR_RETURN(Table t, ExecuteSql(&engine_.catalog(), stmt));
    return t.num_columns() == 0 ? std::string("ok") : t.ToString(20);
  }

  if (cmd == "stats") {
    std::ostringstream os;
    os << "io=" << last_stats_.io_seconds << "s gpu=" << last_stats_.gpu_seconds
       << "s polygon=" << last_stats_.polygon_seconds
       << "s cpu=" << last_stats_.cpu_seconds
       << "s | passes=" << last_stats_.render_passes
       << " fragments=" << last_stats_.fragments
       << " cells=" << last_stats_.cells_processed
       << " transferred=" << last_stats_.bytes_transferred << "B"
       << " exact_tests=" << last_stats_.exact_tests
       << " retries=" << last_stats_.retries
       << " checksum_failures=" << last_stats_.checksum_failures
       << " subcell_splits=" << last_stats_.subcell_splits
       << "\nqueue_wait " << queue_wait_hist_.DescribePercentiles()
       << "\nlatency " << latency_hist_.DescribePercentiles()
       << " mean=" << latency_hist_.mean_seconds() << "s n="
       << latency_hist_.count() << '\n'
       << obs::MetricsRegistry::Global().StatsAppendix();
    return os.str();
  }

  if (cmd == "metrics") {
    obs::UpdateProcessMetrics();
    return obs::MetricsRegistry::Global().PrometheusText();
  }

  if (cmd == "slowlog") {
    obs::SlowQueryLog& log = obs::SlowQueryLog::Global();
    if (words.size() == 1) return log.ToText();
    if (words.size() == 2 && words[1] == "json") return log.ToJson();
    if (words.size() == 2 && words[1] == "clear") {
      log.Clear();
      return std::string("slowlog cleared");
    }
    if (words.size() == 3 && words[1] == "threshold") {
      SPADE_ASSIGN_OR_RETURN(double seconds, ToDouble(words[2]));
      if (seconds < 0) {
        return Status::InvalidArgument("threshold must be >= 0");
      }
      log.SetThreshold(seconds);
      std::ostringstream os;
      os << "slowlog threshold set to " << seconds << "s";
      return os.str();
    }
    return Status::InvalidArgument(
        "usage: slowlog [json|clear|threshold <seconds>]");
  }

  if (cmd == "statements") {
    obs::StatementStore& store = obs::StatementStore::Global();
    if (words.size() == 1) return store.ToText();
    if (words.size() == 2 && words[1] == "json") return store.ToJson();
    if (words.size() == 2 && words[1] == "clear") {
      store.Clear();
      return std::string("statements cleared");
    }
    return Status::InvalidArgument("usage: statements [json|clear]");
  }

  if (cmd == "trace") {
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    if (words.size() == 1 || (words.size() == 2 && words[1] == "list")) {
      return recorder.ToText();
    }
    if (words.size() == 2) {
      std::string json;
      if (!recorder.TraceChromeJson(words[1], &json)) {
        return Status::NotFound(
            "no retained trace for request id '" + words[1] +
            "' (tail sampling keeps slow/errored/1-in-N queries; see "
            "`trace list`)");
      }
      return json;
    }
    return Status::InvalidArgument("usage: trace [<request-id>|list]");
  }

  if (cmd == "timeout") {
    const auto render = [&] {
      std::ostringstream os;
      os << "timeout " << session_timeout_ms_ << "ms";
      return os.str();
    };
    if (words.size() == 1) {
      return session_timeout_ms_ > 0 ? render() : std::string("timeout off");
    }
    if (words.size() != 2) {
      return Status::InvalidArgument("usage: timeout <ms>|off");
    }
    if (words[1] == "off" || words[1] == "0") {
      session_timeout_ms_ = 0;
      return std::string("timeout off");
    }
    SPADE_ASSIGN_OR_RETURN(double ms, ToDouble(words[1]));
    if (ms <= 0) {
      return Status::InvalidArgument("timeout must be > 0 milliseconds");
    }
    session_timeout_ms_ = ms;
    return render();
  }

  if (cmd == "retry") {
    if (words.size() < 2 || words.size() > 3) {
      return Status::InvalidArgument("usage: retry <attempts> [base_ms]");
    }
    SPADE_ASSIGN_OR_RETURN(size_t attempts, ToCount(words[1]));
    if (attempts == 0) {
      return Status::InvalidArgument("retry attempts must be >= 1");
    }
    retry_policy_.max_attempts = static_cast<int>(attempts);
    if (words.size() == 3) {
      SPADE_ASSIGN_OR_RETURN(double base_ms, ToDouble(words[2]));
      if (base_ms < 0) return Status::InvalidArgument("base_ms must be >= 0");
      retry_policy_.base_delay_ms = base_ms;
    }
    // Re-apply to every already-open disk source.
    for (auto& [name, ns] : sources_) {
      if (auto* disk = dynamic_cast<DiskSource*>(ns.source.get())) {
        disk->set_retry_policy(retry_policy_);
      }
    }
    std::ostringstream os;
    os << "retry policy: " << retry_policy_.max_attempts << " attempts, base "
       << retry_policy_.base_delay_ms << "ms";
    return os.str();
  }

  if (cmd == "failpoint") {
    if (words.size() == 2 && words[1] == "list") {
      return failpoint::Describe();
    }
    if (words.size() == 2 && words[1] == "clear") {
      failpoint::ClearAll();
      return std::string("failpoints cleared");
    }
    if (words.size() != 3) {
      return Status::InvalidArgument(
          "usage: failpoint list | clear | <name> <action>");
    }
    SPADE_RETURN_NOT_OK(failpoint::Configure(words[1] + "=" + words[2]));
    return "failpoint " + words[1] + " set to " + words[2];
  }

  return Status::InvalidArgument("unknown command '" + cmd +
                                 "' (try `help`)");
}

}  // namespace spade
