// The spade command-line session: a small command language over the
// engine — generate/load/save datasets, build disk indexes, run every
// query type, inspect stats, and execute SQL. The processor is a library
// (tested directly); tools/spade_cli.cpp wraps it in a REPL.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "engine/spade.h"

namespace spade {

/// \brief An interactive session holding named datasets and an engine.
class CliSession {
 public:
  explicit CliSession(SpadeConfig config = {});

  /// Execute one command line; returns the printable result.
  /// See `Execute("help")` for the command list.
  Result<std::string> Execute(const std::string& line);

  /// Stats of the last executed query (zeroed when none ran yet).
  const QueryStats& last_stats() const { return last_stats_; }

  SpadeEngine& engine() { return engine_; }

 private:
  struct NamedSource {
    std::unique_ptr<CellSource> source;
    // Kept when created in-process so datasets can be saved back out.
    SpatialDataset dataset;
    bool has_dataset = false;
  };

  Result<CellSource*> FindSource(const std::string& name);
  Result<std::string> AddDataset(const std::string& name,
                                 SpatialDataset dataset);

  SpadeEngine engine_;
  std::map<std::string, NamedSource> sources_;
  QueryStats last_stats_;
  RetryPolicy retry_policy_;  ///< applied to every disk-backed source
};

}  // namespace spade
