// The spade command-line session: a small command language over the
// engine — generate/load/save datasets, build disk indexes, run every
// query type, inspect stats, and execute SQL. The processor is a library
// (tested directly); tools/spade_cli.cpp wraps it in a REPL.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/latency_histogram.h"
#include "engine/spade.h"
#include "ingest/csv_tail.h"
#include "ingest/ingest.h"
#include "obs/profile.h"

namespace spade {

/// \brief An interactive session holding named datasets and an engine.
class CliSession {
 public:
  explicit CliSession(SpadeConfig config = {});

  /// Execute one command line; returns the printable result.
  /// See `Execute("help")` for the command list.
  Result<std::string> Execute(const std::string& line);

  /// Stats of the last executed query (zeroed when none ran yet).
  const QueryStats& last_stats() const { return last_stats_; }

  /// Plan profile of the last executed query command (nullptr before the
  /// first query). `explain [--json] <query>` renders this tree; plain
  /// queries collect it too, feeding the slow-query log.
  const obs::QueryProfile* last_profile() const { return last_profile_.get(); }

  /// End-to-end latency of every query command run in this session; the
  /// same histogram type the service layer uses, so `stats` prints the
  /// identical p50/p95/p99 shape whether queries came through a server
  /// queue or a single-caller shell.
  const LatencyHistogram& latency_histogram() const { return latency_hist_; }
  const LatencyHistogram& queue_wait_histogram() const {
    return queue_wait_hist_;
  }

  SpadeEngine& engine() { return engine_; }

 private:
  struct NamedSource {
    std::unique_ptr<CellSource> source;
    // Kept when created in-process so datasets can be saved back out.
    SpatialDataset dataset;
    bool has_dataset = false;
    // Set instead of `source` for streaming-ingest datasets (shared so a
    // CsvTailer can hold it too).
    std::shared_ptr<ingest::IngestSource> ingest;
  };

  Result<CellSource*> FindSource(const std::string& name);
  Result<std::string> AddDataset(const std::string& name,
                                 SpatialDataset dataset);
  Result<std::string> ExecuteCommand(const std::string& line);

  SpadeEngine engine_;
  std::map<std::string, NamedSource> sources_;
  /// One CSV tailer per ingest dataset (per-file offsets survive across
  /// `ingest csv` commands, so repeated calls append only new lines).
  std::map<std::string, std::unique_ptr<ingest::CsvTailer>> tailers_;
  QueryStats last_stats_;
  std::unique_ptr<obs::QueryProfile> last_profile_;
  RetryPolicy retry_policy_;  ///< applied to every disk-backed source
  LatencyHistogram latency_hist_;
  LatencyHistogram queue_wait_hist_;  ///< all zero for direct execution
  /// Session deadline (`timeout <ms>` command, 0 = none): each query
  /// command runs under a fresh token armed with this budget.
  double session_timeout_ms_ = 0;
  /// Token of the query command currently executing (set by Execute
  /// around ExecuteCommand, which threads it into QueryOptions).
  CancelToken* active_cancel_ = nullptr;
  /// Session-local request ids ("q1", "q2", ...) so `trace <id>` works
  /// against the flight recorder from the shell too.
  uint64_t query_seq_ = 0;
};

}  // namespace spade
