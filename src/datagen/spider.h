// Spider-style synthetic data generation (the paper's Table 4 workloads,
// generated with [19]): uniform and gaussian points and boxes over the unit
// square, plus "parcel" sets of non-intersecting rectangles used as join
// constraints (Section 6.6).
#pragma once

#include <cstdint>

#include "storage/dataset.h"

namespace spade {

/// Points uniformly distributed over the unit square.
SpatialDataset GenerateUniformPoints(size_t n, uint64_t seed);

/// Points normally distributed (mean 0.5, sigma 0.15 per axis, clamped)
/// over the unit square.
SpatialDataset GenerateGaussianPoints(size_t n, uint64_t seed);

/// Axis-parallel rectangles of varying sizes, centers uniform over the
/// unit square. `max_size` bounds each rectangle's side length.
SpatialDataset GenerateUniformBoxes(size_t n, uint64_t seed,
                                    double max_size = 0.005);

/// Axis-parallel rectangles with gaussian-distributed centers.
SpatialDataset GenerateGaussianBoxes(size_t n, uint64_t seed,
                                     double max_size = 0.005);

/// `n` non-intersecting rectangles ("parcels") of varying sizes tiling the
/// unit square: one shrunken rectangle per cell of a ceil(sqrt(n)) grid.
SpatialDataset GenerateParcels(size_t n, uint64_t seed);

}  // namespace spade
