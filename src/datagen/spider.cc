#include "datagen/spider.h"

#include <algorithm>
#include <cmath>
#include <random>

namespace spade {

namespace {

double ClampUnit(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

SpatialDataset GenerateUniformPoints(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "uniform_points_" + std::to_string(n);
  ds.geoms.reserve(n);
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (size_t i = 0; i < n; ++i) {
    ds.geoms.emplace_back(Vec2{u(gen), u(gen)});
  }
  return ds;
}

SpatialDataset GenerateGaussianPoints(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "gaussian_points_" + std::to_string(n);
  ds.geoms.reserve(n);
  std::mt19937_64 gen(seed);
  std::normal_distribution<double> g(0.5, 0.15);
  for (size_t i = 0; i < n; ++i) {
    ds.geoms.emplace_back(Vec2{ClampUnit(g(gen)), ClampUnit(g(gen))});
  }
  return ds;
}

namespace {

SpatialDataset GenerateBoxes(size_t n, uint64_t seed, double max_size,
                             bool gaussian, const std::string& name) {
  SpatialDataset ds;
  ds.name = name + "_" + std::to_string(n);
  ds.geoms.reserve(n);
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::normal_distribution<double> g(0.5, 0.15);
  std::uniform_real_distribution<double> size(max_size * 0.1, max_size);
  for (size_t i = 0; i < n; ++i) {
    const double cx = gaussian ? ClampUnit(g(gen)) : u(gen);
    const double cy = gaussian ? ClampUnit(g(gen)) : u(gen);
    const double w = size(gen), h = size(gen);
    const Box b(ClampUnit(cx - w / 2), ClampUnit(cy - h / 2),
                ClampUnit(cx + w / 2), ClampUnit(cy + h / 2));
    ds.geoms.emplace_back(Polygon::FromBox(b));
  }
  return ds;
}

}  // namespace

SpatialDataset GenerateUniformBoxes(size_t n, uint64_t seed, double max_size) {
  return GenerateBoxes(n, seed, max_size, /*gaussian=*/false, "uniform_boxes");
}

SpatialDataset GenerateGaussianBoxes(size_t n, uint64_t seed,
                                     double max_size) {
  return GenerateBoxes(n, seed, max_size, /*gaussian=*/true, "gaussian_boxes");
}

SpatialDataset GenerateParcels(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "parcels_" + std::to_string(n);
  ds.geoms.reserve(n);
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.05, 0.45);
  const size_t grid = static_cast<size_t>(std::ceil(std::sqrt(n)));
  const double cell = 1.0 / grid;
  for (size_t i = 0; i < n; ++i) {
    const size_t gx = i % grid;
    const size_t gy = i / grid;
    // A random sub-rectangle strictly inside the cell: parcels never touch.
    const double mx = u(gen) * cell, my = u(gen) * cell;
    const double wx = u(gen) * cell, wy = u(gen) * cell;
    const Box b(gx * cell + mx, gy * cell + my,
                gx * cell + std::min(cell - 0.01 * cell, mx + wx),
                gy * cell + std::min(cell - 0.01 * cell, my + wy));
    ds.geoms.emplace_back(Polygon::FromBox(b));
  }
  return ds;
}

}  // namespace spade
