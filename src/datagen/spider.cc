#include "datagen/spider.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace spade {

namespace {

double ClampUnit(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

SpatialDataset GenerateUniformPoints(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "uniform_points_" + std::to_string(n);
  ds.geoms.reserve(n);
  PortableRng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextUnit();
    const double y = rng.NextUnit();
    ds.geoms.emplace_back(Vec2{x, y});
  }
  return ds;
}

SpatialDataset GenerateGaussianPoints(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "gaussian_points_" + std::to_string(n);
  ds.geoms.reserve(n);
  PortableRng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double x = ClampUnit(rng.Gaussian(0.5, 0.15));
    const double y = ClampUnit(rng.Gaussian(0.5, 0.15));
    ds.geoms.emplace_back(Vec2{x, y});
  }
  return ds;
}

namespace {

SpatialDataset GenerateBoxes(size_t n, uint64_t seed, double max_size,
                             bool gaussian, const std::string& name) {
  SpatialDataset ds;
  ds.name = name + "_" + std::to_string(n);
  ds.geoms.reserve(n);
  PortableRng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const double cx =
        gaussian ? ClampUnit(rng.Gaussian(0.5, 0.15)) : rng.NextUnit();
    const double cy =
        gaussian ? ClampUnit(rng.Gaussian(0.5, 0.15)) : rng.NextUnit();
    const double w = rng.Uniform(max_size * 0.1, max_size);
    const double h = rng.Uniform(max_size * 0.1, max_size);
    const Box b(ClampUnit(cx - w / 2), ClampUnit(cy - h / 2),
                ClampUnit(cx + w / 2), ClampUnit(cy + h / 2));
    ds.geoms.emplace_back(Polygon::FromBox(b));
  }
  return ds;
}

}  // namespace

SpatialDataset GenerateUniformBoxes(size_t n, uint64_t seed, double max_size) {
  return GenerateBoxes(n, seed, max_size, /*gaussian=*/false, "uniform_boxes");
}

SpatialDataset GenerateGaussianBoxes(size_t n, uint64_t seed,
                                     double max_size) {
  return GenerateBoxes(n, seed, max_size, /*gaussian=*/true, "gaussian_boxes");
}

SpatialDataset GenerateParcels(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "parcels_" + std::to_string(n);
  ds.geoms.reserve(n);
  PortableRng rng(seed);
  const size_t grid = static_cast<size_t>(std::ceil(std::sqrt(n)));
  const double cell = 1.0 / grid;
  for (size_t i = 0; i < n; ++i) {
    const size_t gx = i % grid;
    const size_t gy = i / grid;
    // A random sub-rectangle strictly inside the cell: parcels never touch.
    const double mx = rng.Uniform(0.05, 0.45) * cell;
    const double my = rng.Uniform(0.05, 0.45) * cell;
    const double wx = rng.Uniform(0.05, 0.45) * cell;
    const double wy = rng.Uniform(0.05, 0.45) * cell;
    const Box b(gx * cell + mx, gy * cell + my,
                gx * cell + std::min(cell - 0.01 * cell, mx + wx),
                gy * cell + std::min(cell - 0.01 * cell, my + wy));
    ds.geoms.emplace_back(Polygon::FromBox(b));
  }
  return ds;
}

}  // namespace spade
