// Name-keyed access to every synthetic dataset generator, so the CLI's
// `gen` command and the query server's control protocol share one list of
// kinds (and stay in sync when generators are added).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "storage/dataset.h"

namespace spade {

/// Generate a dataset by kind name. Kinds: uniform-points, gaussian-points,
/// uniform-boxes, gaussian-boxes, parcels, taxi, tweets, neighborhoods,
/// census, counties, zipcodes, buildings, countries. `n` is ignored by the
/// fixed-size tessellation kinds (neighborhoods, census, counties,
/// zipcodes, countries).
Result<SpatialDataset> GenerateDataset(const std::string& kind, size_t n,
                                       uint64_t seed);

/// Comma-separated list of valid kinds, for error messages and help text.
const std::string& DatasetKindList();

}  // namespace spade
