#include "datagen/realdata.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace spade {

namespace {

// SplitMix64: stable per-coordinate hashing so that grid corners and shared
// edges are jittered identically for both adjacent polygons.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double HashUnit(uint64_t a, uint64_t b, uint64_t c, uint64_t seed) {
  const uint64_t h = Mix(a * 0x100000001B3ull ^ Mix(b ^ Mix(c ^ seed)));
  return (h >> 11) * (1.0 / 9007199254740992.0);  // [0, 1)
}

}  // namespace

Box NycExtent() { return Box(-74.28, 40.48, -73.65, 40.93); }
Box UsaExtent() { return Box(-124.8, 24.5, -66.9, 49.4); }
Box WorldExtent() { return Box(-180.0, -60.0, 180.0, 75.0); }

SpatialDataset TaxiLikePoints(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "taxi_like_" + std::to_string(n);
  ds.geoms.reserve(n);
  const Box ext = NycExtent();
  PortableRng rng(seed);
  auto u = [&rng] { return rng.NextUnit(); };
  auto norm = [&rng] { return rng.Gaussian(); };

  // Dense pickup hotspots (midtown-like cores get the highest weight).
  struct Hotspot {
    Vec2 center;
    double sigma;
    double weight;
  };
  std::vector<Hotspot> hotspots;
  double total_w = 0;
  for (int i = 0; i < 12; ++i) {
    Hotspot h;
    h.center = {ext.min.x + u() * ext.Width(),
                ext.min.y + u() * ext.Height()};
    h.sigma = 0.004 + 0.02 * u();
    h.weight = 1.0 / (i + 1);
    total_w += h.weight;
    hotspots.push_back(h);
  }
  for (size_t i = 0; i < n; ++i) {
    if (u() < 0.1) {  // uniform background traffic
      const double bx = ext.min.x + u() * ext.Width();
      const double by = ext.min.y + u() * ext.Height();
      ds.geoms.emplace_back(Vec2{bx, by});
      continue;
    }
    double pick = u() * total_w;
    const Hotspot* h = &hotspots.back();
    for (const auto& cand : hotspots) {
      if (pick < cand.weight) {
        h = &cand;
        break;
      }
      pick -= cand.weight;
    }
    const double dx = norm() * h->sigma;
    const double dy = norm() * h->sigma;
    Vec2 p{h->center.x + dx, h->center.y + dy};
    p.x = std::clamp(p.x, ext.min.x, ext.max.x);
    p.y = std::clamp(p.y, ext.min.y, ext.max.y);
    ds.geoms.emplace_back(p);
  }
  return ds;
}

SpatialDataset TweetLikePoints(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "tweet_like_" + std::to_string(n);
  ds.geoms.reserve(n);
  const Box ext = UsaExtent();
  PortableRng rng(seed);
  auto u = [&rng] { return rng.NextUnit(); };
  auto norm = [&rng] { return rng.Gaussian(); };

  struct City {
    Vec2 center;
    double sigma;
    double weight;
  };
  std::vector<City> cities;
  double total_w = 0;
  for (int i = 0; i < 60; ++i) {
    City c;
    c.center = {ext.min.x + u() * ext.Width(),
                ext.min.y + u() * ext.Height()};
    c.sigma = 0.08 + 0.4 * u();
    c.weight = 1.0 / (i + 1);  // power-law city sizes
    total_w += c.weight;
    cities.push_back(c);
  }
  for (size_t i = 0; i < n; ++i) {
    if (u() < 0.15) {
      const double bx = ext.min.x + u() * ext.Width();
      const double by = ext.min.y + u() * ext.Height();
      ds.geoms.emplace_back(Vec2{bx, by});
      continue;
    }
    double pick = u() * total_w;
    const City* c = &cities.back();
    for (const auto& cand : cities) {
      if (pick < cand.weight) {
        c = &cand;
        break;
      }
      pick -= cand.weight;
    }
    const double dx = norm() * c->sigma;
    const double dy = norm() * c->sigma;
    Vec2 p{c->center.x + dx, c->center.y + dy};
    p.x = std::clamp(p.x, ext.min.x, ext.max.x);
    p.y = std::clamp(p.y, ext.min.y, ext.max.y);
    ds.geoms.emplace_back(p);
  }
  return ds;
}

SpatialDataset JitteredGridPolygons(const Box& extent, int nx, int ny,
                                    uint64_t seed, int verts_per_edge,
                                    const std::string& name) {
  SpatialDataset ds;
  ds.name = name;
  ds.geoms.reserve(static_cast<size_t>(nx) * ny);
  const double cw = extent.Width() / nx;
  const double ch = extent.Height() / ny;

  // Jittered grid corner: interior corners are displaced by up to 30% of a
  // cell; border corners stay pinned so the tiling covers the extent.
  auto corner = [&](int i, int j) -> Vec2 {
    double x = extent.min.x + i * cw;
    double y = extent.min.y + j * ch;
    if (i > 0 && i < nx) {
      x += (HashUnit(i, j, 1, seed) - 0.5) * 0.6 * cw;
    }
    if (j > 0 && j < ny) {
      y += (HashUnit(i, j, 2, seed) - 0.5) * 0.6 * ch;
    }
    return {x, y};
  };

  // Densify the edge between grid corners a=(ai,aj) and b=(bi,bj) with
  // `verts_per_edge` intermediate vertices displaced perpendicular to the
  // edge. The displacement depends only on the undirected edge, so both
  // adjacent polygons generate identical boundaries.
  auto edge_points = [&](int ai, int aj, int bi, int bj) {
    std::vector<Vec2> pts;
    bool flip = false;
    if (std::make_pair(ai, aj) > std::make_pair(bi, bj)) {
      std::swap(ai, bi);
      std::swap(aj, bj);
      flip = true;
    }
    const Vec2 a = corner(ai, aj);
    const Vec2 b = corner(bi, bj);
    const Vec2 d = b - a;
    const double len = d.Norm();
    const Vec2 n = len > 0 ? Vec2{-d.y / len, d.x / len} : Vec2{0, 0};
    // Border edges stay straight: displacing them would push the boundary
    // outside the extent on one side and open a gap on the other.
    const bool border = (ai == 0 && bi == 0) || (ai == nx && bi == nx) ||
                        (aj == 0 && bj == 0) || (aj == ny && bj == ny);
    const double amp = border ? 0.0 : 0.08 * std::min(cw, ch);
    const uint64_t ekey =
        Mix((static_cast<uint64_t>(ai) << 40) ^ (static_cast<uint64_t>(aj) << 20) ^
            (static_cast<uint64_t>(bi) << 10) ^ static_cast<uint64_t>(bj));
    pts.push_back(a);
    for (int k = 1; k <= verts_per_edge; ++k) {
      const double t = static_cast<double>(k) / (verts_per_edge + 1);
      const double disp = (HashUnit(ekey, k, 3, seed) - 0.5) * 2.0 * amp *
                          std::sin(M_PI * t);  // pinched at corners
      pts.push_back(a + d * t + n * disp);
    }
    pts.push_back(b);
    if (flip) std::reverse(pts.begin(), pts.end());
    pts.pop_back();  // next edge re-adds the shared corner
    return pts;
  };

  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      Polygon poly;
      auto append = [&](std::vector<Vec2> pts) {
        poly.outer.insert(poly.outer.end(), pts.begin(), pts.end());
      };
      append(edge_points(i, j, i + 1, j));
      append(edge_points(i + 1, j, i + 1, j + 1));
      append(edge_points(i + 1, j + 1, i, j + 1));
      append(edge_points(i, j + 1, i, j));
      poly.Normalize();
      ds.geoms.emplace_back(std::move(poly));
    }
  }
  return ds;
}

SpatialDataset NeighborhoodLikePolygons(uint64_t seed, int nx, int ny) {
  return JitteredGridPolygons(NycExtent(), nx, ny, seed, 12,
                              "neighborhood_like");
}

SpatialDataset CensusLikePolygons(uint64_t seed, int nx, int ny) {
  return JitteredGridPolygons(NycExtent(), nx, ny, seed + 1, 8, "census_like");
}

SpatialDataset CountyLikePolygons(uint64_t seed, int nx, int ny) {
  return JitteredGridPolygons(UsaExtent(), nx, ny, seed + 2, 28,
                              "county_like");
}

SpatialDataset ZipcodeLikePolygons(uint64_t seed, int nx, int ny) {
  return JitteredGridPolygons(UsaExtent(), nx, ny, seed + 3, 8,
                              "zipcode_like");
}

SpatialDataset BuildingLikePolygons(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "building_like_" + std::to_string(n);
  ds.geoms.reserve(n);
  const Box ext = WorldExtent();
  PortableRng rng(seed);
  auto u = [&rng] { return rng.NextUnit(); };
  auto norm = [&rng] { return rng.Gaussian(); };

  // Urban clusters; buildings are tiny rotated quads around them.
  const int kClusters = 200;
  std::vector<Vec2> centers;
  centers.reserve(kClusters);
  for (int i = 0; i < kClusters; ++i) {
    const double cx = ext.min.x + u() * ext.Width();
    const double cy = ext.min.y + u() * ext.Height();
    centers.push_back({cx, cy});
  }
  for (size_t i = 0; i < n; ++i) {
    const Vec2& c = centers[rng.NextU64() % kClusters];
    const double px = c.x + norm() * 0.25;
    const double py = c.y + norm() * 0.25;
    const Vec2 pos{px, py};
    const double w = 0.0002 + 0.0004 * u();
    const double h = 0.0002 + 0.0004 * u();
    const double ang = u() * M_PI;
    const double ca = std::cos(ang), sa = std::sin(ang);
    Polygon poly;
    for (const auto& [dx, dy] : {std::pair{-w, -h}, std::pair{w, -h},
                                 std::pair{w, h}, std::pair{-w, h}}) {
      poly.outer.push_back({pos.x + dx * ca - dy * sa, pos.y + dx * sa + dy * ca});
    }
    poly.Normalize();
    ds.geoms.emplace_back(std::move(poly));
  }
  return ds;
}

SpatialDataset CountryLikePolygons(uint64_t seed, int nx, int ny) {
  return JitteredGridPolygons(WorldExtent(), nx, ny, seed + 4, 36,
                              "country_like");
}

}  // namespace spade
