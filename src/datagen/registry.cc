#include "datagen/registry.h"

#include "datagen/realdata.h"
#include "datagen/spider.h"

namespace spade {

Result<SpatialDataset> GenerateDataset(const std::string& kind, size_t n,
                                       uint64_t seed) {
  if (kind == "uniform-points") return GenerateUniformPoints(n, seed);
  if (kind == "gaussian-points") return GenerateGaussianPoints(n, seed);
  if (kind == "uniform-boxes") return GenerateUniformBoxes(n, seed);
  if (kind == "gaussian-boxes") return GenerateGaussianBoxes(n, seed);
  if (kind == "parcels") return GenerateParcels(n, seed);
  if (kind == "taxi") return TaxiLikePoints(n, seed);
  if (kind == "tweets") return TweetLikePoints(n, seed);
  if (kind == "neighborhoods") return NeighborhoodLikePolygons(seed);
  if (kind == "census") return CensusLikePolygons(seed);
  if (kind == "counties") return CountyLikePolygons(seed);
  if (kind == "zipcodes") return ZipcodeLikePolygons(seed);
  if (kind == "buildings") return BuildingLikePolygons(n, seed);
  if (kind == "countries") return CountryLikePolygons(seed);
  return Status::InvalidArgument("unknown dataset kind '" + kind +
                                 "' (kinds: " + DatasetKindList() + ")");
}

const std::string& DatasetKindList() {
  static const std::string kinds =
      "uniform-points, gaussian-points, uniform-boxes, gaussian-boxes, "
      "parcels, taxi, tweets, neighborhoods, census, counties, zipcodes, "
      "buildings, countries";
  return kinds;
}

}  // namespace spade
