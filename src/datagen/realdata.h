// Synthetic analogs of the paper's real datasets (Table 1). The sandbox has
// no NYC taxi / Twitter / OSM dumps, so these generators reproduce each
// dataset's *shape* — spatial extent, skew, polygon complexity ratios, and
// tiling structure — at configurable scale. See DESIGN.md for the
// substitution rationale.
//
// All coordinates are EPSG:4326 (lon, lat degrees), like the originals.
#pragma once

#include <cstdint>

#include "storage/dataset.h"

namespace spade {

/// Spatial extents of the analog datasets.
Box NycExtent();    ///< roughly the five boroughs
Box UsaExtent();    ///< contiguous US
Box WorldExtent();  ///< inhabited latitudes

/// Taxi-like points: heavily skewed pickup locations over the NYC extent
/// (a mixture of dense gaussian hotspots plus a uniform background).
SpatialDataset TaxiLikePoints(size_t n, uint64_t seed);

/// Tweet-like points over the US: power-law weighted "city" clusters plus
/// background noise.
SpatialDataset TweetLikePoints(size_t n, uint64_t seed);

/// A tiling of `extent` into nx * ny jittered-grid polygons that share
/// edges exactly (like administrative boundaries). `verts_per_edge`
/// controls polygon complexity (the paper's counties/zipcodes have far
/// more vertices than neighborhoods).
SpatialDataset JitteredGridPolygons(const Box& extent, int nx, int ny,
                                    uint64_t seed, int verts_per_edge,
                                    const std::string& name);

/// Neighborhood-like polygons over NYC (coarse tiling, simple shapes).
SpatialDataset NeighborhoodLikePolygons(uint64_t seed, int nx = 14,
                                        int ny = 14);

/// Census-tract-like polygons over NYC (finer tiling).
SpatialDataset CensusLikePolygons(uint64_t seed, int nx = 46, int ny = 46);

/// County-like polygons over the US (coarse tiling, complex boundaries).
SpatialDataset CountyLikePolygons(uint64_t seed, int nx = 56, int ny = 56);

/// Zipcode-like polygons over the US (fine tiling).
SpatialDataset ZipcodeLikePolygons(uint64_t seed, int nx = 180, int ny = 180);

/// Building-like polygons: many tiny disjoint quads scattered world-wide
/// in urban clusters (the paper's worst case: sub-pixel polygons).
SpatialDataset BuildingLikePolygons(size_t n, uint64_t seed);

/// Country-like polygons: few, large, complex boundaries tiling the world.
SpatialDataset CountryLikePolygons(uint64_t seed, int nx = 18, int ny = 14);

}  // namespace spade
