// The differential fuzz harness: run a FuzzCase through the full SPADE
// engine and through the brute-force oracles, compare exactly, and when
// they disagree shrink the case to a minimal repro for tests/corpus/.
//
// Invariants checked per case:
//   * engine answer == oracle answer (exact id/pair/count equality;
//     epsilon only on kNN distances)
//   * with a failpoint schedule armed, the engine may fail with a typed
//     error — but a success must still be exact ("fail or be right,
//     never silently wrong")
//   * metamorphic: the answer is invariant under doubling the canvas
//     resolution, and a translated / scaled copy of the case still
//     matches its oracle (exercising different canvas alignments)
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fuzz/case.h"

namespace spade {
namespace fuzz {

/// How to sabotage the engine answer before comparison — used to prove the
/// harness detects and shrinks real bugs (tools/spade_fuzz --inject-bug).
enum class InjectedBug {
  kNone,
  kDropLast,   ///< drop the last id / pair / neighbor of every answer
  kOffByOne,   ///< increment the first id of every answer
};

/// \brief Per-run knobs of the differential harness.
struct RunOptions {
  bool metamorphic = true;    ///< run the metamorphic variants on success
  std::string scratch_dir;    ///< where use_disk cases spill ("" = stay
                              ///< in memory, ignoring config.use_disk)
  InjectedBug inject_bug = InjectedBug::kNone;
};

/// \brief Verdict of one differential run.
struct RunOutcome {
  bool mismatch = false;      ///< engine and oracle disagreed
  bool engine_fault = false;  ///< typed error tolerated (failpoints armed)
  std::string detail;         ///< human-readable mismatch description

  bool passed() const { return !mismatch; }
};

/// Execute `c` through engine and oracle and compare.
RunOutcome RunCase(const FuzzCase& c, const RunOptions& opts = {});

/// Greedily minimize a failing case: drop dataset chunks, simplify the
/// config, drop the failpoint schedule — keeping every simplification
/// that still fails. Returns the smallest failing case found (the input
/// itself if nothing smaller fails).
FuzzCase ShrinkCase(const FuzzCase& c, const RunOptions& opts);

/// \brief Configuration of the fuzz loop (tools/spade_fuzz, CI smoke).
struct FuzzLoopOptions {
  uint64_t seed = 1;          ///< master seed; case i uses SplitMix64 chain
  size_t iterations = 100;
  GenOptions gen;
  RunOptions run;
  std::string corpus_dir;     ///< write shrunk repros here ("" = don't)
  bool shrink = true;         ///< minimize failures before reporting
  bool stop_on_failure = true;
  bool service_mode = false;  ///< drive SpadeService from many threads
  int service_threads = 4;
  /// Drive a batching-enabled SpadeService: cohorts of cases share one
  /// dataset (forcing rendezvous + shared canvas passes + result-cache
  /// hits), a fraction carry deadlines or mid-flight cancellations, and
  /// every OK response must still match its oracle exactly.
  bool batch_mode = false;
  double batch_window_ms = 2.0;  ///< gather window of the batch service
  /// Drive a streaming IngestSource: interleave appends, cancelled
  /// appends, CSV tails, forced merges (with the ingest.merge failpoint
  /// randomly armed) and snapshot-pinned engine queries, each checked
  /// exactly against a brute-force oracle over the rows appended at or
  /// before its pinned epoch.
  bool ingest_mode = false;
  std::function<void(const std::string&)> log;  ///< progress sink (may be {})
};

/// \brief Aggregate result of a fuzz loop.
struct FuzzLoopResult {
  size_t executed = 0;         ///< cases actually run
  size_t faults = 0;  ///< tolerated typed errors (failpoints, cancellation)
  size_t overloaded = 0;       ///< service admissions rejected (service mode)
  std::vector<uint64_t> failing_seeds;
  std::vector<std::string> corpus_paths;  ///< repro files written
  std::string first_detail;    ///< mismatch description of the first failure

  bool clean() const { return failing_seeds.empty(); }
};

/// The sequential fuzz loop: generate → run → (on failure) shrink → save.
FuzzLoopResult FuzzLoop(const FuzzLoopOptions& opts);

/// Derive the per-iteration case seed from the master seed. Exposed so
/// `spade_fuzz --seed=N` replays exactly the case the loop would run.
uint64_t CaseSeed(uint64_t master_seed, size_t iteration);

/// The concurrent fuzz loop: register every case's datasets in ONE
/// SpadeService, fire the requests from `service_threads` threads, then
/// compare each response against its oracle. Exercises admission control,
/// single-flight cell loads, and device arbitration under the sanitizers.
FuzzLoopResult ServiceFuzzLoop(const FuzzLoopOptions& opts);

/// The batch-differential loop: like ServiceFuzzLoop, but the service runs
/// with the multi-query batch scheduler enabled and the workload is built
/// to batch — consecutive cases form cohorts over ONE shared dataset (the
/// last member repeats the leader's query verbatim, exercising the result
/// cache), while some members carry tight deadlines or asynchronous
/// cancellations. Cancelled / DeadlineExceeded responses are tolerated as
/// typed faults; an OK response that differs from the oracle in any byte
/// is a failure (written to the corpus, shrunk when solo-reproducible).
FuzzLoopResult BatchFuzzLoop(const FuzzLoopOptions& opts);

/// The ingest-differential loop: one mutable IngestSource, a deterministic
/// interleaving of write-path operations (append batches, cancellations,
/// out-of-extent rejections, CSV tails with malformed rows, threshold and
/// forced merges under a randomly armed ingest.merge failpoint) and
/// snapshot-pinned engine queries. Every query must match the brute-force
/// oracle over EXACTLY the rows sealed at or before its pinned epoch;
/// every rejected write must leave the source observably unchanged.
FuzzLoopResult IngestFuzzLoop(const FuzzLoopOptions& opts);

}  // namespace fuzz
}  // namespace spade
