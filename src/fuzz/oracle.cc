#include "fuzz/oracle.h"

#include <algorithm>

#include "geom/predicates.h"

namespace spade {
namespace fuzz {

namespace {

// Exact distance from a point to any geometry (0 inside polygons).
double DistanceTo(const Geometry& g, const Vec2& p) {
  return PointGeometryDistance(g, p);
}

// Every vertex of `g` inside the constraint (the containment criterion).
bool AllVerticesInside(const Geometry& g, const MultiPolygon& constraint) {
  switch (g.type()) {
    case GeomType::kPoint:
      return PointInMultiPolygon(constraint, g.point());
    case GeomType::kLine: {
      for (const auto& v : g.line().points) {
        if (!PointInMultiPolygon(constraint, v)) return false;
      }
      return !g.line().points.empty();
    }
    case GeomType::kPolygon: {
      bool any = false;
      for (const auto& part : g.polygon().parts) {
        for (const auto& v : part.outer) {
          if (!PointInMultiPolygon(constraint, v)) return false;
          any = true;
        }
      }
      return any;
    }
  }
  return false;
}

}  // namespace

std::vector<GeomId> OracleSelection(const SpatialDataset& data,
                                    const MultiPolygon& constraint) {
  std::vector<GeomId> ids;
  for (uint32_t i = 0; i < data.size(); ++i) {
    if (GeometryIntersectsPolygon(data.geoms[i], constraint)) {
      ids.push_back(i);
    }
  }
  return ids;
}

std::vector<GeomId> OracleRange(const SpatialDataset& data, const Box& range) {
  MultiPolygon mp;
  mp.parts.push_back(Polygon::FromBox(range));
  return OracleSelection(data, mp);
}

std::vector<GeomId> OracleContains(const SpatialDataset& data,
                                   const MultiPolygon& constraint) {
  std::vector<GeomId> ids;
  for (uint32_t i = 0; i < data.size(); ++i) {
    if (AllVerticesInside(data.geoms[i], constraint)) ids.push_back(i);
  }
  return ids;
}

std::vector<std::pair<GeomId, GeomId>> OracleJoin(
    const SpatialDataset& polys, const SpatialDataset& other) {
  std::vector<std::pair<GeomId, GeomId>> pairs;
  for (uint32_t i = 0; i < polys.size(); ++i) {
    const MultiPolygon& mp = polys.geoms[i].polygon();
    for (uint32_t j = 0; j < other.size(); ++j) {
      if (GeometryIntersectsPolygon(other.geoms[j], mp)) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

std::vector<GeomId> OracleDistance(const SpatialDataset& points,
                                   const Geometry& probe, double r) {
  std::vector<GeomId> ids;
  for (uint32_t i = 0; i < points.size(); ++i) {
    if (DistanceTo(probe, points.geoms[i].point()) <= r) ids.push_back(i);
  }
  return ids;
}

std::vector<std::pair<GeomId, GeomId>> OracleDistanceJoin(
    const SpatialDataset& left, const SpatialDataset& right_points,
    double r) {
  std::vector<std::pair<GeomId, GeomId>> pairs;
  for (uint32_t i = 0; i < left.size(); ++i) {
    for (uint32_t j = 0; j < right_points.size(); ++j) {
      if (DistanceTo(left.geoms[i], right_points.geoms[j].point()) <= r) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

std::vector<uint64_t> OracleAggregation(const SpatialDataset& data,
                                        const SpatialDataset& constraints) {
  std::vector<uint64_t> counts(constraints.size(), 0);
  for (uint32_t i = 0; i < constraints.size(); ++i) {
    const MultiPolygon& mp = constraints.geoms[i].polygon();
    for (uint32_t j = 0; j < data.size(); ++j) {
      counts[i] += GeometryIntersectsPolygon(data.geoms[j], mp);
    }
  }
  return counts;
}

std::vector<std::pair<GeomId, double>> OracleKnn(const SpatialDataset& points,
                                                 const Vec2& p, size_t k) {
  std::vector<std::pair<GeomId, double>> all;
  all.reserve(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) {
    all.emplace_back(i, p.DistanceTo(points.geoms[i].point()));
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace fuzz
}  // namespace spade
