// Brute-force CPU oracles for every query class the engine supports. Each
// oracle is the textbook O(n) / O(n*m) nested loop over the exact
// computational-geometry predicates of src/geom — no canvas, no grid, no
// index — so an engine-vs-oracle difference always indicts the engine
// pipeline (or the predicates themselves, which the geom unit tests pin).
//
// These are the reference implementations the differential fuzzer
// (src/fuzz/fuzzer.h, tools/spade_fuzz) and the corpus regression test
// compare against; the hand-rolled `expect` loops in tests/engine_test.cc
// predate them and compute the same answers.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "geom/geometry.h"
#include "storage/dataset.h"

namespace spade {
namespace fuzz {

/// Ids of objects intersecting the polygonal constraint (sorted).
std::vector<GeomId> OracleSelection(const SpatialDataset& data,
                                    const MultiPolygon& constraint);

/// Ids of objects intersecting the rectangle (sorted). Matches the
/// engine's range fast path: exact geometry-vs-box intersection.
std::vector<GeomId> OracleRange(const SpatialDataset& data, const Box& range);

/// Ids passing the paper's vertex-containment criterion: every vertex of
/// the object inside the constraint (== intersection for points). Exact
/// for convex constraints, which is what the fuzzer generates.
std::vector<GeomId> OracleContains(const SpatialDataset& data,
                                   const MultiPolygon& constraint);

/// (polygon id, object id) pairs of the spatial join, sorted.
std::vector<std::pair<GeomId, GeomId>> OracleJoin(const SpatialDataset& polys,
                                                  const SpatialDataset& other);

/// Ids of points within distance r of the probe geometry (sorted).
std::vector<GeomId> OracleDistance(const SpatialDataset& points,
                                   const Geometry& probe, double r);

/// Type-1 distance join: (left id, right point id) with distance <= r.
std::vector<std::pair<GeomId, GeomId>> OracleDistanceJoin(
    const SpatialDataset& left, const SpatialDataset& right_points, double r);

/// Count of data objects intersecting each constraint polygon.
std::vector<uint64_t> OracleAggregation(const SpatialDataset& data,
                                        const SpatialDataset& constraints);

/// The k nearest points to p as (id, distance), ascending distance; ties
/// broken by id so the order is total.
std::vector<std::pair<GeomId, double>> OracleKnn(const SpatialDataset& points,
                                                 const Vec2& p, size_t k);

}  // namespace fuzz
}  // namespace spade
