#include "fuzz/case.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>

#include "common/rng.h"
#include "datagen/registry.h"
#include "geom/wkt.h"

namespace spade {
namespace fuzz {

namespace {

// Salt folded into every case seed so the fuzz stream is decorrelated from
// other users of SplitMix64 on small integers.
constexpr uint64_t kCaseSalt = 0x5fade0f5a1ull;

const QueryClass kAllClasses[] = {
    QueryClass::kSelection,    QueryClass::kRange,
    QueryClass::kContains,     QueryClass::kJoin,
    QueryClass::kDistance,     QueryClass::kDistanceJoin,
    QueryClass::kAggregation,  QueryClass::kKnn,
};

// Synthetic polyline dataset (no registry kind generates lines).
SpatialDataset GenerateLines(size_t n, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "fuzz_lines_" + std::to_string(n);
  ds.geoms.reserve(n);
  PortableRng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    LineString l;
    double x = rng.NextUnit(), y = rng.NextUnit();
    l.points.push_back({x, y});
    const int segments = static_cast<int>(rng.UniformInt(1, 5));
    for (int s = 0; s < segments; ++s) {
      x = std::clamp(x + rng.Uniform(-0.12, 0.12), 0.0, 1.0);
      y = std::clamp(y + rng.Uniform(-0.12, 0.12), 0.0, 1.0);
      l.points.push_back({x, y});
    }
    ds.geoms.emplace_back(std::move(l));
  }
  return ds;
}

SpatialDataset GenerateByKind(const std::string& kind, size_t n,
                              uint64_t seed) {
  if (kind == "lines") return GenerateLines(n, seed);
  auto r = GenerateDataset(kind, n, seed);
  // Registry kinds used here are all valid; an empty dataset would only
  // mean the kind list changed under us.
  return r.ok() ? std::move(r).value() : SpatialDataset{};
}

// A random simple star polygon around `center` (same construction as the
// test utilities, but on the portable RNG).
Polygon StarPolygon(PortableRng* rng, const Vec2& center, double rmin,
                    double rmax, int vertices) {
  Polygon poly;
  poly.outer.reserve(vertices);
  double angle = rng->Uniform(0, 2 * M_PI);
  const double step = 2 * M_PI / vertices;
  for (int i = 0; i < vertices; ++i) {
    const double r = rng->Uniform(rmin, rmax);
    poly.outer.push_back(
        {center.x + r * std::cos(angle), center.y + r * std::sin(angle)});
    angle += step;
  }
  poly.Normalize();
  return poly;
}

// Random constraint polygon placed inside `extent`; convex_only restricts
// to shapes where vertex containment is exact (contains queries).
MultiPolygon RandomConstraint(PortableRng* rng, const Box& extent,
                              bool convex_only) {
  const double w = extent.Width(), h = extent.Height();
  const double scale = std::min(w, h);
  const Vec2 center{rng->Uniform(extent.min.x + 0.2 * w,
                                 extent.max.x - 0.2 * w),
                    rng->Uniform(extent.min.y + 0.2 * h,
                                 extent.max.y - 0.2 * h)};
  MultiPolygon mp;
  const int shape = static_cast<int>(rng->UniformInt(0, convex_only ? 1 : 3));
  switch (shape) {
    case 0: {  // axis-aligned box
      const double bw = rng->Uniform(0.05, 0.4) * scale;
      const double bh = rng->Uniform(0.05, 0.4) * scale;
      mp.parts.push_back(Polygon::FromBox(
          Box(center.x - bw, center.y - bh, center.x + bw, center.y + bh)));
      break;
    }
    case 1: {  // circle (convex)
      mp.parts.push_back(Polygon::Circle(
          center, rng->Uniform(0.05, 0.35) * scale,
          static_cast<int>(rng->UniformInt(8, 24))));
      break;
    }
    case 2: {  // star (often concave)
      mp.parts.push_back(StarPolygon(rng, center,
                                     rng->Uniform(0.03, 0.1) * scale,
                                     rng->Uniform(0.15, 0.4) * scale,
                                     static_cast<int>(rng->UniformInt(5, 18))));
      break;
    }
    default: {  // two disjoint-ish parts, one with a hole
      Polygon a = StarPolygon(rng, center, 0.08 * scale, 0.22 * scale,
                              static_cast<int>(rng->UniformInt(6, 12)));
      // Concentric hole well inside the star's inner radius.
      std::vector<Vec2> hole;
      const double hr = 0.04 * scale;
      for (int i = 5; i >= 0; --i) {
        const double t = i * (2 * M_PI / 6);
        hole.push_back({center.x + hr * std::cos(t),
                        center.y + hr * std::sin(t)});
      }
      a.holes.push_back(std::move(hole));
      mp.parts.push_back(std::move(a));
      const Vec2 c2{extent.min.x + 0.12 * w, extent.min.y + 0.12 * h};
      mp.parts.push_back(StarPolygon(rng, c2, 0.02 * scale, 0.08 * scale, 8));
      break;
    }
  }
  return mp;
}

bool ClassEnabled(QueryClass c, const std::string& classes) {
  if (classes.empty()) return true;
  std::stringstream ss(classes);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok == QueryClassName(c)) return true;
  }
  return false;
}

void FormatDouble(std::ostream& os, double v) {
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

}  // namespace

const char* QueryClassName(QueryClass c) {
  switch (c) {
    case QueryClass::kSelection: return "selection";
    case QueryClass::kRange: return "range";
    case QueryClass::kContains: return "contains";
    case QueryClass::kJoin: return "join";
    case QueryClass::kDistance: return "distance";
    case QueryClass::kDistanceJoin: return "distance-join";
    case QueryClass::kAggregation: return "aggregation";
    case QueryClass::kKnn: return "knn";
  }
  return "unknown";
}

Result<QueryClass> QueryClassFromName(const std::string& name) {
  for (QueryClass c : kAllClasses) {
    if (name == QueryClassName(c)) return c;
  }
  return Status::InvalidArgument("unknown query class '" + name + "'");
}

SpadeConfig CaseConfig::ToSpadeConfig() const {
  SpadeConfig cfg;
  cfg.canvas_resolution = canvas_resolution;
  cfg.max_cell_bytes = max_cell_bytes;
  cfg.device_memory_budget = device_memory_budget;
  cfg.gpu_threads = static_cast<size_t>(gpu_threads);
  return cfg;
}

FuzzCase GenerateCase(uint64_t seed, const GenOptions& opts) {
  FuzzCase c;
  c.seed = seed;
  PortableRng rng(SplitMix64(seed ^ kCaseSalt));

  // --- query class ---------------------------------------------------------
  std::vector<QueryClass> enabled;
  for (QueryClass cls : kAllClasses) {
    if (ClassEnabled(cls, opts.classes)) enabled.push_back(cls);
  }
  if (enabled.empty()) enabled.push_back(QueryClass::kSelection);
  c.query.cls = enabled[static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(enabled.size()) - 1))];

  // --- engine config -------------------------------------------------------
  const int resolutions[] = {16, 32, 64, 128, 256, 512};
  c.config.canvas_resolution =
      resolutions[rng.UniformInt(0, 5)];
  const size_t cell_bytes[] = {1 << 10, 4 << 10, 16 << 10, 64 << 10};
  c.config.max_cell_bytes = cell_bytes[rng.UniformInt(0, 3)];
  // Budgets stay comfortably above canvas needs (~16 bytes/pixel, several
  // canvases live at once): a budget the canvas itself cannot fit makes
  // the engine legitimately report OOM, which is not a differential
  // finding. Memory-pressure paths are exercised via tiny cells and the
  // device.alloc failpoint instead.
  const size_t budgets[] = {32ull << 20, 64ull << 20, 256ull << 20};
  c.config.device_memory_budget =
      budgets[rng.UniformInt(c.config.canvas_resolution >= 256 ? 1 : 0, 2)];
  c.config.gpu_threads = static_cast<int>(rng.UniformInt(1, 4));
  c.config.warm_layers = rng.Chance(0.3);
  c.config.use_disk = rng.Chance(0.15);

  // --- datasets ------------------------------------------------------------
  const uint64_t dseed = SplitMix64(seed ^ 0xda7a5eedull);
  const uint64_t dseed2 = SplitMix64(seed ^ 0xda7a5eed2ull);
  const size_t cap = opts.max_objects;
  auto size_in = [&rng](size_t lo, size_t hi) {
    return static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
  };
  const char* point_kinds[] = {"uniform-points", "gaussian-points", "taxi",
                               "tweets"};
  const char* poly_kinds[] = {"uniform-boxes", "gaussian-boxes", "parcels",
                              "buildings"};
  const char* any_kinds[] = {"uniform-points", "gaussian-points",
                             "uniform-boxes", "gaussian-boxes", "parcels",
                             "lines", "taxi", "buildings"};
  auto pick = [&rng](auto& kinds) {
    return kinds[rng.UniformInt(
        0, static_cast<int64_t>(std::size(kinds)) - 1)];
  };

  switch (c.query.cls) {
    case QueryClass::kSelection:
    case QueryClass::kRange:
    case QueryClass::kContains:
      c.data = GenerateByKind(pick(any_kinds), size_in(20, cap), dseed);
      break;
    case QueryClass::kJoin:
      c.data = GenerateByKind(pick(poly_kinds), size_in(8, 60), dseed);
      // Right side: points or polygons (the two paper join types).
      c.data2 = GenerateByKind(
          rng.Chance(0.5) ? pick(point_kinds) : pick(poly_kinds),
          size_in(20, std::min<size_t>(cap, 400)), dseed2);
      break;
    case QueryClass::kDistance:
    case QueryClass::kKnn:
      c.data = GenerateByKind(pick(point_kinds), size_in(20, cap), dseed);
      break;
    case QueryClass::kDistanceJoin: {
      const char* left_kinds[] = {"uniform-points", "uniform-boxes", "lines"};
      const char* left = pick(left_kinds);
      const size_t n1 = size_in(5, 50);
      // The engine builds constraint canvases from the smaller side; a
      // non-point left must therefore stay the smaller side (only point
      // data can be streamed against the layers).
      const bool left_is_points = std::string(left) == "uniform-points";
      const size_t n2_lo = left_is_points ? 20 : std::max<size_t>(20, n1);
      c.data = GenerateByKind(left, n1, dseed);
      c.data2 = GenerateByKind(
          pick(point_kinds),
          size_in(n2_lo, std::max(n2_lo, std::min<size_t>(cap, 400))),
          dseed2);
      break;
    }
    case QueryClass::kAggregation:
      c.data = GenerateByKind(
          rng.Chance(0.7) ? pick(point_kinds) : pick(poly_kinds),
          size_in(20, cap), dseed);
      c.data2 = GenerateByKind(pick(poly_kinds), size_in(4, 36), dseed2);
      break;
  }
  c.data.name = "fuzz_data";
  if (!c.data2.geoms.empty()) c.data2.name = "fuzz_data2";

  // --- query parameters ----------------------------------------------------
  const Box extent = c.data.Bounds();
  const double diag =
      std::sqrt(extent.Width() * extent.Width() +
                extent.Height() * extent.Height());
  switch (c.query.cls) {
    case QueryClass::kSelection:
      c.query.constraint = RandomConstraint(&rng, extent, false);
      break;
    case QueryClass::kContains:
      c.query.constraint = RandomConstraint(&rng, extent, true);
      break;
    case QueryClass::kRange: {
      const double x0 = rng.Uniform(extent.min.x, extent.max.x);
      const double y0 = rng.Uniform(extent.min.y, extent.max.y);
      const double w = rng.Uniform(0.05, 0.6) * extent.Width();
      const double h = rng.Uniform(0.05, 0.6) * extent.Height();
      c.query.range = Box(x0, y0, std::min(x0 + w, extent.max.x),
                          std::min(y0 + h, extent.max.y));
      break;
    }
    case QueryClass::kDistance: {
      const int probe_shape = static_cast<int>(rng.UniformInt(0, 2));
      const Vec2 pc{rng.Uniform(extent.min.x, extent.max.x),
                    rng.Uniform(extent.min.y, extent.max.y)};
      if (probe_shape == 0) {
        c.query.probe = Geometry(pc);
      } else if (probe_shape == 1) {
        LineString l;
        l.points.push_back(pc);
        l.points.push_back({pc.x + rng.Uniform(-0.2, 0.2) * extent.Width(),
                            pc.y + rng.Uniform(-0.2, 0.2) * extent.Height()});
        c.query.probe = Geometry(std::move(l));
      } else {
        MultiPolygon mp;
        mp.parts.push_back(
            StarPolygon(&rng, pc, 0.02 * diag, 0.08 * diag, 8));
        c.query.probe = Geometry(std::move(mp));
      }
      c.query.radius = rng.Uniform(0.005, 0.25) * diag;
      break;
    }
    case QueryClass::kDistanceJoin:
      c.query.radius = rng.Uniform(0.005, 0.1) * diag;
      break;
    case QueryClass::kKnn: {
      c.query.probe = Geometry(Vec2{rng.Uniform(extent.min.x, extent.max.x),
                                    rng.Uniform(extent.min.y, extent.max.y)});
      const size_t n = c.data.size();
      c.query.k = rng.Chance(0.1)
                      ? n  // occasionally ask for everything
                      : static_cast<size_t>(rng.UniformInt(
                            1, static_cast<int64_t>(std::min<size_t>(n, 40))));
      break;
    }
    case QueryClass::kJoin:
    case QueryClass::kAggregation:
      break;  // fully described by the two datasets
  }

  // --- failpoint schedule --------------------------------------------------
  if (opts.with_failpoints && rng.Chance(1.0 / 6)) {
    switch (rng.UniformInt(0, c.config.use_disk ? 2 : 0)) {
      case 0:
        c.failpoints = "device.alloc=prob(0.05,oom)";
        break;
      case 1:
        c.failpoints = "io.read=prob(0.05,io)";
        break;
      default:
        c.failpoints = "block.deserialize=prob(0.03,io)";
        break;
    }
  }

  // --- cancellation schedule -----------------------------------------------
  if (opts.with_cancellation && rng.Chance(1.0 / 6)) {
    if (rng.Chance(0.7)) {
      // Deterministic: trips on exactly the n-th cooperative check.
      c.cancel_after_checks = rng.UniformInt(1, 40);
    } else {
      // Wall-clock: small enough to plausibly interrupt mid-query.
      c.deadline_ms = rng.Uniform(0.05, 5.0);
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Corpus serialization
// ---------------------------------------------------------------------------

std::string FormatCase(const FuzzCase& c) {
  std::ostringstream os;
  os << "# spade-fuzz case v1\n";
  os << "seed " << c.seed << "\n";
  if (!c.note.empty()) os << "note " << c.note << "\n";
  os << "class " << QueryClassName(c.query.cls) << "\n";
  os << "resolution " << c.config.canvas_resolution << "\n";
  os << "cell_bytes " << c.config.max_cell_bytes << "\n";
  os << "budget " << c.config.device_memory_budget << "\n";
  os << "threads " << c.config.gpu_threads << "\n";
  os << "layers " << (c.config.warm_layers ? 1 : 0) << "\n";
  os << "disk " << (c.config.use_disk ? 1 : 0) << "\n";
  if (!c.failpoints.empty()) os << "failpoints " << c.failpoints << "\n";
  if (c.cancel_after_checks > 0) {
    os << "cancel_after_checks " << c.cancel_after_checks << "\n";
  }
  if (c.deadline_ms > 0) {
    os << "deadline_ms ";
    FormatDouble(os, c.deadline_ms);
    os << "\n";
  }
  switch (c.query.cls) {
    case QueryClass::kSelection:
    case QueryClass::kContains:
      os << "constraint " << ToWkt(Geometry(c.query.constraint)) << "\n";
      break;
    case QueryClass::kRange:
      os << "range ";
      FormatDouble(os, c.query.range.min.x);
      os << " ";
      FormatDouble(os, c.query.range.min.y);
      os << " ";
      FormatDouble(os, c.query.range.max.x);
      os << " ";
      FormatDouble(os, c.query.range.max.y);
      os << "\n";
      break;
    case QueryClass::kDistance:
      os << "probe " << ToWkt(c.query.probe) << "\n";
      os << "radius ";
      FormatDouble(os, c.query.radius);
      os << "\n";
      break;
    case QueryClass::kDistanceJoin:
      os << "radius ";
      FormatDouble(os, c.query.radius);
      os << "\n";
      break;
    case QueryClass::kKnn:
      os << "probe " << ToWkt(c.query.probe) << "\n";
      os << "k " << c.query.k << "\n";
      break;
    case QueryClass::kJoin:
    case QueryClass::kAggregation:
      break;
  }
  for (const auto& g : c.data.geoms) os << "data " << ToWkt(g) << "\n";
  for (const auto& g : c.data2.geoms) os << "data2 " << ToWkt(g) << "\n";
  return os.str();
}

Result<FuzzCase> ParseCase(const std::string& text) {
  FuzzCase c;
  c.data.name = "fuzz_data";
  c.data2.name = "fuzz_data2";
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  bool have_class = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.find(' ');
    const std::string key = line.substr(0, sp);
    const std::string rest =
        sp == std::string::npos ? std::string() : line.substr(sp + 1);
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument("corpus line " + std::to_string(lineno) +
                                     ": " + why);
    };
    if (key == "seed") {
      c.seed = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "note") {
      c.note = rest;
    } else if (key == "class") {
      SPADE_ASSIGN_OR_RETURN(c.query.cls, QueryClassFromName(rest));
      have_class = true;
    } else if (key == "resolution") {
      c.config.canvas_resolution = std::atoi(rest.c_str());
    } else if (key == "cell_bytes") {
      c.config.max_cell_bytes = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "budget") {
      c.config.device_memory_budget = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "threads") {
      c.config.gpu_threads = std::atoi(rest.c_str());
    } else if (key == "layers") {
      c.config.warm_layers = rest == "1";
    } else if (key == "disk") {
      c.config.use_disk = rest == "1";
    } else if (key == "failpoints") {
      c.failpoints = rest;
    } else if (key == "cancel_after_checks") {
      c.cancel_after_checks = std::strtoll(rest.c_str(), nullptr, 10);
    } else if (key == "deadline_ms") {
      c.deadline_ms = std::strtod(rest.c_str(), nullptr);
    } else if (key == "constraint") {
      SPADE_ASSIGN_OR_RETURN(Geometry g, ParseWkt(rest));
      if (!g.is_polygon()) return bad("constraint must be a polygon");
      c.query.constraint = g.polygon();
    } else if (key == "range") {
      std::istringstream rs(rest);
      double x0, y0, x1, y1;
      if (!(rs >> x0 >> y0 >> x1 >> y1)) return bad("range needs 4 numbers");
      c.query.range = Box(x0, y0, x1, y1);
    } else if (key == "probe") {
      SPADE_ASSIGN_OR_RETURN(c.query.probe, ParseWkt(rest));
    } else if (key == "radius") {
      c.query.radius = std::strtod(rest.c_str(), nullptr);
    } else if (key == "k") {
      c.query.k = std::strtoull(rest.c_str(), nullptr, 10);
    } else if (key == "data") {
      SPADE_ASSIGN_OR_RETURN(Geometry g, ParseWkt(rest));
      c.data.geoms.push_back(std::move(g));
    } else if (key == "data2") {
      SPADE_ASSIGN_OR_RETURN(Geometry g, ParseWkt(rest));
      c.data2.geoms.push_back(std::move(g));
    } else {
      return bad("unknown key '" + key + "'");
    }
  }
  if (!have_class) return Status::InvalidArgument("corpus case has no class");
  if (c.data.geoms.empty()) {
    return Status::InvalidArgument("corpus case has no data");
  }
  return c;
}

Status SaveCase(const FuzzCase& c, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot write " + path);
  out << FormatCase(c);
  out.close();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<FuzzCase> LoadCase(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCase(buf.str());
}

}  // namespace fuzz
}  // namespace spade
