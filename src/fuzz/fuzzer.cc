#include "fuzz/fuzzer.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <future>
#include <iomanip>
#include <sstream>
#include <thread>

#include "common/failpoint.h"
#include "common/rng.h"
#include "engine/spade.h"
#include "fuzz/oracle.h"
#include "ingest/csv_tail.h"
#include "ingest/ingest.h"
#include "service/service.h"

namespace spade {
namespace fuzz {

namespace {

// ---------------------------------------------------------------------------
// Answers and comparison
// ---------------------------------------------------------------------------

// The union of every query class's result shape; only the fields of the
// case's class are populated.
struct Answer {
  std::vector<GeomId> ids;
  std::vector<std::pair<GeomId, GeomId>> pairs;
  std::vector<uint64_t> counts;
  std::vector<std::pair<GeomId, double>> neighbors;
};

void ApplyBug(InjectedBug bug, Answer* a) {
  switch (bug) {
    case InjectedBug::kNone:
      return;
    case InjectedBug::kDropLast:
      if (!a->ids.empty()) a->ids.pop_back();
      if (!a->pairs.empty()) a->pairs.pop_back();
      if (!a->neighbors.empty()) a->neighbors.pop_back();
      if (!a->counts.empty() && a->counts.back() > 0) a->counts.back()--;
      return;
    case InjectedBug::kOffByOne:
      if (!a->ids.empty()) a->ids.front()++;
      if (!a->pairs.empty()) a->pairs.front().second++;
      if (!a->neighbors.empty()) a->neighbors.front().first++;
      if (!a->counts.empty()) a->counts.front()++;
      return;
  }
}

std::string DiffIds(const char* what, const std::vector<GeomId>& engine,
                    const std::vector<GeomId>& oracle) {
  if (engine == oracle) return "";
  std::ostringstream os;
  os << what << ": engine returned " << engine.size() << " ids, oracle "
     << oracle.size();
  const size_t n = std::min(engine.size(), oracle.size());
  for (size_t i = 0; i < n; ++i) {
    if (engine[i] != oracle[i]) {
      os << "; first diff at rank " << i << " (engine " << engine[i]
         << ", oracle " << oracle[i] << ")";
      return os.str();
    }
  }
  if (engine.size() != oracle.size()) {
    const auto& longer = engine.size() > oracle.size() ? engine : oracle;
    os << "; extra id " << longer[n] << " on the "
       << (engine.size() > oracle.size() ? "engine" : "oracle") << " side";
  }
  return os.str();
}

std::string DiffPairs(const char* what,
                      std::vector<std::pair<GeomId, GeomId>> engine,
                      std::vector<std::pair<GeomId, GeomId>> oracle) {
  std::sort(engine.begin(), engine.end());
  std::sort(oracle.begin(), oracle.end());
  if (engine == oracle) return "";
  std::ostringstream os;
  os << what << ": engine returned " << engine.size() << " pairs, oracle "
     << oracle.size();
  const size_t n = std::min(engine.size(), oracle.size());
  for (size_t i = 0; i < n; ++i) {
    if (engine[i] != oracle[i]) {
      os << "; first diff at rank " << i << " (engine (" << engine[i].first
         << "," << engine[i].second << "), oracle (" << oracle[i].first << ","
         << oracle[i].second << "))";
      return os.str();
    }
  }
  if (engine.size() != oracle.size()) {
    const auto& longer = engine.size() > oracle.size() ? engine : oracle;
    os << "; extra pair (" << longer[n].first << "," << longer[n].second
       << ") on the " << (engine.size() > oracle.size() ? "engine" : "oracle")
       << " side";
  }
  return os.str();
}

std::string DiffCounts(const std::vector<uint64_t>& engine,
                       const std::vector<uint64_t>& oracle) {
  if (engine == oracle) return "";
  std::ostringstream os;
  os << "aggregation: " << engine.size() << " engine counts vs "
     << oracle.size() << " oracle counts";
  for (size_t i = 0; i < std::min(engine.size(), oracle.size()); ++i) {
    if (engine[i] != oracle[i]) {
      os << "; constraint " << i << " counted " << engine[i] << " by engine, "
         << oracle[i] << " by oracle";
      break;
    }
  }
  return os.str();
}

// kNN is the one class compared with an epsilon: equal-distance neighbors
// may be reported in either order, so ranks are compared by distance and
// each engine id is re-verified against the dataset.
std::string DiffKnn(const FuzzCase& c,
                    const std::vector<std::pair<GeomId, double>>& engine,
                    const std::vector<std::pair<GeomId, double>>& oracle) {
  std::ostringstream os;
  if (engine.size() != oracle.size()) {
    os << "knn: engine returned " << engine.size() << " neighbors, oracle "
       << oracle.size();
    return os.str();
  }
  const Vec2 p = c.query.probe.point();
  for (size_t i = 0; i < engine.size(); ++i) {
    const double tol = 1e-9 * std::max(1.0, std::abs(oracle[i].second));
    if (std::abs(engine[i].second - oracle[i].second) > tol) {
      os << "knn: rank " << i << " distance " << engine[i].second
         << " (engine) vs " << oracle[i].second << " (oracle)";
      return os.str();
    }
    const GeomId id = engine[i].first;
    if (id >= c.data.size()) {
      os << "knn: rank " << i << " id " << id << " out of range";
      return os.str();
    }
    const double true_d = p.DistanceTo(c.data.geoms[id].point());
    if (std::abs(true_d - engine[i].second) >
        1e-9 * std::max(1.0, std::abs(true_d))) {
      os << "knn: rank " << i << " reports distance " << engine[i].second
         << " for id " << id << " whose true distance is " << true_d;
      return os.str();
    }
  }
  // No duplicate ids.
  std::vector<GeomId> ids;
  for (const auto& [id, d] : engine) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  if (std::adjacent_find(ids.begin(), ids.end()) != ids.end()) {
    return "knn: duplicate id in neighbor list";
  }
  return "";
}

Answer OracleAnswer(const FuzzCase& c) {
  Answer a;
  switch (c.query.cls) {
    case QueryClass::kSelection:
      a.ids = OracleSelection(c.data, c.query.constraint);
      break;
    case QueryClass::kRange:
      a.ids = OracleRange(c.data, c.query.range);
      break;
    case QueryClass::kContains:
      a.ids = OracleContains(c.data, c.query.constraint);
      break;
    case QueryClass::kJoin:
      a.pairs = OracleJoin(c.data, c.data2);
      break;
    case QueryClass::kDistance:
      a.ids = OracleDistance(c.data, c.query.probe, c.query.radius);
      break;
    case QueryClass::kDistanceJoin:
      a.pairs = OracleDistanceJoin(c.data, c.data2, c.query.radius);
      break;
    case QueryClass::kAggregation:
      a.counts = OracleAggregation(c.data, c.data2);
      break;
    case QueryClass::kKnn:
      a.neighbors = OracleKnn(c.data, c.query.probe.point(), c.query.k);
      break;
  }
  return a;
}

std::string CompareAnswers(const FuzzCase& c, const Answer& engine,
                           const Answer& oracle) {
  switch (c.query.cls) {
    case QueryClass::kSelection:
      return DiffIds("selection", engine.ids, oracle.ids);
    case QueryClass::kRange:
      return DiffIds("range", engine.ids, oracle.ids);
    case QueryClass::kContains:
      return DiffIds("contains", engine.ids, oracle.ids);
    case QueryClass::kDistance:
      return DiffIds("distance", engine.ids, oracle.ids);
    case QueryClass::kJoin:
      return DiffPairs("join", engine.pairs, oracle.pairs);
    case QueryClass::kDistanceJoin:
      return DiffPairs("distance-join", engine.pairs, oracle.pairs);
    case QueryClass::kAggregation:
      return DiffCounts(engine.counts, oracle.counts);
    case QueryClass::kKnn:
      return DiffKnn(c, engine.neighbors, oracle.neighbors);
  }
  return "";
}

// ---------------------------------------------------------------------------
// Engine execution
// ---------------------------------------------------------------------------

// Builds the cell sources for one run. Disk routing only applies to the
// primary dataset and only when a scratch directory is available.
struct CaseSources {
  std::unique_ptr<CellSource> data;
  std::unique_ptr<CellSource> data2;
  std::string disk_dir;  // non-empty when `data` went through DiskSource

  ~CaseSources() {
    data.reset();
    data2.reset();
    if (!disk_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(disk_dir, ec);
    }
  }
};

Result<std::unique_ptr<CaseSources>> BuildSources(const FuzzCase& c,
                                                  const RunOptions& opts,
                                                  const SpadeConfig& cfg) {
  auto s = std::make_unique<CaseSources>();
  if (c.config.use_disk && !opts.scratch_dir.empty()) {
    std::ostringstream dir;
    dir << opts.scratch_dir << "/case_" << c.seed << "_"
        << reinterpret_cast<uintptr_t>(s.get());
    std::error_code ec;
    std::filesystem::create_directories(dir.str(), ec);
    if (ec) return Status::IOError("cannot create " + dir.str());
    SPADE_ASSIGN_OR_RETURN(
        auto disk, DiskSource::Create(dir.str(), c.data, cfg.max_cell_bytes,
                                      /*cache_bytes=*/4u << 20));
    s->disk_dir = dir.str();
    s->data = std::move(disk);
  } else {
    s->data = MakeInMemorySource("fuzz_data", c.data, cfg);
  }
  if (!c.data2.geoms.empty()) {
    s->data2 = MakeInMemorySource("fuzz_data2", c.data2, cfg);
  }
  return s;
}

/// True when the case arms any cancellation mechanism.
bool CancelArmed(const FuzzCase& c) {
  return c.cancel_after_checks > 0 || c.deadline_ms > 0;
}

Result<Answer> RunEngine(const FuzzCase& c, const RunOptions& opts,
                         CancelToken* cancel) {
  const SpadeConfig cfg = c.config.ToSpadeConfig();
  SpadeEngine engine(cfg);
  SPADE_ASSIGN_OR_RETURN(auto sources, BuildSources(c, opts, cfg));
  if (c.config.warm_layers) {
    SPADE_RETURN_NOT_OK(engine.WarmIndexes(*sources->data, true));
  }
  QueryOptions qopts;
  qopts.cancel = cancel;
  Answer a;
  switch (c.query.cls) {
    case QueryClass::kSelection: {
      SPADE_ASSIGN_OR_RETURN(
          auto r, engine.SpatialSelection(*sources->data, c.query.constraint,
                                          qopts));
      a.ids = std::move(r.ids);
      break;
    }
    case QueryClass::kRange: {
      SPADE_ASSIGN_OR_RETURN(
          auto r, engine.RangeSelection(*sources->data, c.query.range, qopts));
      a.ids = std::move(r.ids);
      break;
    }
    case QueryClass::kContains: {
      SPADE_ASSIGN_OR_RETURN(
          auto r, engine.ContainsSelection(*sources->data, c.query.constraint,
                                           qopts));
      a.ids = std::move(r.ids);
      break;
    }
    case QueryClass::kJoin: {
      SPADE_ASSIGN_OR_RETURN(
          auto r, engine.SpatialJoin(*sources->data, *sources->data2, qopts));
      a.pairs = std::move(r.pairs);
      break;
    }
    case QueryClass::kDistance: {
      SPADE_ASSIGN_OR_RETURN(
          auto r, engine.DistanceSelection(*sources->data, c.query.probe,
                                           c.query.radius, qopts));
      a.ids = std::move(r.ids);
      break;
    }
    case QueryClass::kDistanceJoin: {
      SPADE_ASSIGN_OR_RETURN(
          auto r, engine.DistanceJoin(*sources->data, *sources->data2,
                                      c.query.radius, qopts));
      a.pairs = std::move(r.pairs);
      break;
    }
    case QueryClass::kAggregation: {
      SPADE_ASSIGN_OR_RETURN(
          auto r, engine.SpatialAggregation(*sources->data, *sources->data2,
                                            qopts));
      a.counts = std::move(r.counts);
      break;
    }
    case QueryClass::kKnn: {
      SPADE_ASSIGN_OR_RETURN(
          auto r, engine.KnnSelection(*sources->data, c.query.probe.point(),
                                      c.query.k, qopts));
      a.neighbors = std::move(r.neighbors);
      break;
    }
  }
  ApplyBug(opts.inject_bug, &a);
  return a;
}

// ---------------------------------------------------------------------------
// Metamorphic variants
// ---------------------------------------------------------------------------

Geometry MapGeometry(const Geometry& g,
                     const std::function<Vec2(const Vec2&)>& f) {
  switch (g.type()) {
    case GeomType::kPoint:
      return Geometry(f(g.point()));
    case GeomType::kLine: {
      LineString l;
      l.points.reserve(g.line().points.size());
      for (const auto& p : g.line().points) l.points.push_back(f(p));
      return Geometry(std::move(l));
    }
    case GeomType::kPolygon: {
      MultiPolygon mp;
      for (const auto& part : g.polygon().parts) {
        Polygon q;
        q.outer.reserve(part.outer.size());
        for (const auto& p : part.outer) q.outer.push_back(f(p));
        for (const auto& hole : part.holes) {
          std::vector<Vec2> h;
          h.reserve(hole.size());
          for (const auto& p : hole) h.push_back(f(p));
          q.holes.push_back(std::move(h));
        }
        mp.parts.push_back(std::move(q));
      }
      return Geometry(std::move(mp));
    }
  }
  return g;
}

FuzzCase TransformCase(const FuzzCase& c,
                       const std::function<Vec2(const Vec2&)>& f,
                       double radius_scale) {
  FuzzCase t = c;
  for (auto& g : t.data.geoms) g = MapGeometry(g, f);
  for (auto& g : t.data2.geoms) g = MapGeometry(g, f);
  t.query.constraint =
      MapGeometry(Geometry(c.query.constraint), f).polygon();
  const Vec2 rmin = f(c.query.range.min), rmax = f(c.query.range.max);
  t.query.range = Box(std::min(rmin.x, rmax.x), std::min(rmin.y, rmax.y),
                      std::max(rmin.x, rmax.x), std::max(rmin.y, rmax.y));
  t.query.probe = MapGeometry(c.query.probe, f);
  t.query.radius = c.query.radius * radius_scale;
  return t;
}

// A metamorphic variant is itself checked differentially (engine vs the
// oracle of the transformed input): floating-point boundary cases can
// legitimately flip under translation/scaling, so engine(T(x)) is compared
// against oracle(T(x)) rather than against the original ids. Resolution
// refinement leaves the input untouched, so there the old oracle answer is
// reused — the engine must be invariant in the exact id set.
struct Variant {
  const char* name;
  FuzzCase c;
  bool reuse_oracle;
};

std::vector<Variant> MetamorphicVariants(const FuzzCase& c) {
  std::vector<Variant> vs;
  {  // resolution refinement
    Variant v{"refine-resolution", c, true};
    v.c.config.canvas_resolution =
        std::min(1024, c.config.canvas_resolution * 2);
    // Four times the pixels need four times the canvas memory; give the
    // refined run headroom so it cannot hit a legitimate OOM.
    v.c.config.device_memory_budget =
        std::max<size_t>(v.c.config.device_memory_budget, 256ull << 20);
    if (v.c.config.canvas_resolution != c.config.canvas_resolution) {
      vs.push_back(std::move(v));
    }
  }
  {  // translation
    const Box b = c.data.Bounds();
    const double dx = 0.37 * std::max(1e-6, b.Width());
    const double dy = -0.21 * std::max(1e-6, b.Height());
    vs.push_back({"translate", TransformCase(c, [dx, dy](const Vec2& p) {
                    return Vec2{p.x + dx, p.y + dy};
                  }, 1.0), false});
  }
  {  // uniform scale about the origin
    const double s = 3.0;
    vs.push_back({"scale", TransformCase(c, [s](const Vec2& p) {
                    return Vec2{p.x * s, p.y * s};
                  }, s), false});
  }
  return vs;
}

RunOutcome RunCaseOnce(const FuzzCase& c, const RunOptions& opts,
                       const Answer* reuse_oracle) {
  RunOutcome out;
  const bool faults_armed = !c.failpoints.empty();
  const bool cancel_armed = CancelArmed(c);
  if (faults_armed) {
    failpoint::ClearAll();
    const Status st = failpoint::Configure(c.failpoints);
    if (!st.ok()) {
      out.mismatch = true;
      out.detail = "bad failpoint schedule: " + st.ToString();
      return out;
    }
  }
  CancelToken token;
  if (c.cancel_after_checks > 0) token.CancelAfterChecks(c.cancel_after_checks);
  if (c.deadline_ms > 0) token.SetTimeout(c.deadline_ms / 1000.0);
  Result<Answer> engine =
      RunEngine(c, opts, cancel_armed ? &token : nullptr);
  if (faults_armed) failpoint::ClearAll();
  if (!engine.ok()) {
    if (cancel_armed &&
        (engine.status().code() == Status::Code::kCancelled ||
         engine.status().code() == Status::Code::kDeadlineExceeded)) {
      // Cancellation did its job: a typed unwind, no result.
      out.engine_fault = true;
      return out;
    }
    if (faults_armed) {
      // "Fail or be right": a typed error under an armed schedule is an
      // acceptable outcome.
      out.engine_fault = true;
      return out;
    }
    out.mismatch = true;
    out.detail = "engine error without faults armed: " +
                 engine.status().ToString();
    return out;
  }
  // The partial-result invariant: a countdown-tripped token must never
  // surface as success. (Deadlines are exempt — the clock may run out
  // after the query already finished.)
  if (c.cancel_after_checks > 0 && token.cancelled()) {
    out.mismatch = true;
    out.detail =
        "cancelled query (cancel_after_checks=" +
        std::to_string(c.cancel_after_checks) +
        ") returned success — partial results may have escaped as OK";
    return out;
  }
  const Answer oracle = reuse_oracle ? *reuse_oracle : OracleAnswer(c);
  out.detail = CompareAnswers(c, engine.value(), oracle);
  out.mismatch = !out.detail.empty();
  return out;
}

}  // namespace

RunOutcome RunCase(const FuzzCase& c, const RunOptions& opts) {
  const Answer oracle = OracleAnswer(c);
  RunOutcome out = RunCaseOnce(c, opts, &oracle);
  if (out.mismatch || out.engine_fault || !opts.metamorphic) return out;
  // Metamorphic checks only make sense on deterministic (fault-free,
  // cancellation-free) runs.
  if (!c.failpoints.empty() || CancelArmed(c)) return out;
  for (const Variant& v : MetamorphicVariants(c)) {
    RunOutcome vo =
        RunCaseOnce(v.c, opts, v.reuse_oracle ? &oracle : nullptr);
    if (vo.mismatch) {
      vo.detail = std::string("metamorphic ") + v.name + ": " + vo.detail;
      return vo;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

namespace {

// Remove geoms[start, start+len) from a dataset.
SpatialDataset DropRange(const SpatialDataset& ds, size_t start, size_t len) {
  SpatialDataset out;
  out.name = ds.name;
  out.geoms.reserve(ds.size() - len);
  for (size_t i = 0; i < ds.size(); ++i) {
    if (i < start || i >= start + len) out.geoms.push_back(ds.geoms[i]);
  }
  return out;
}

// ddmin-style chunk removal over one dataset, bounded by `*budget` probe
// evaluations.
void ShrinkDataset(FuzzCase* best, SpatialDataset FuzzCase::*field,
                   const std::function<bool(const FuzzCase&)>& fails,
                   int* budget) {
  size_t chunk = std::max<size_t>(1, ((*best).*field).size() / 2);
  while (chunk >= 1 && *budget > 0) {
    bool removed_any = false;
    size_t start = 0;
    while (start < ((*best).*field).size() && *budget > 0) {
      const size_t len =
          std::min(chunk, ((*best).*field).size() - start);
      // Never empty the primary dataset: a case needs data.
      if (((*best).*field).size() - len == 0 &&
          field == &FuzzCase::data) {
        break;
      }
      FuzzCase cand = *best;
      cand.*field = DropRange((*best).*field, start, len);
      --*budget;
      if (fails(cand)) {
        *best = std::move(cand);
        removed_any = true;
        // Retry the same offset: the next chunk shifted into place.
      } else {
        start += len;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = chunk > 1 ? chunk / 2 : 1;
  }
}

}  // namespace

FuzzCase ShrinkCase(const FuzzCase& c, const RunOptions& opts) {
  int budget = 250;  // probe evaluations; each one is a full engine run
  const auto fails = [&opts](const FuzzCase& cand) {
    return RunCase(cand, opts).mismatch;
  };
  FuzzCase best = c;
  if (!fails(best)) return best;  // flaky — keep the original verbatim

  // 1. Simplifications that shrink the *explanation*, not the data.
  const auto try_keep = [&](FuzzCase cand) {
    if (budget <= 0) return;
    --budget;
    if (fails(cand)) best = std::move(cand);
  };
  if (!best.failpoints.empty()) {
    FuzzCase cand = best;
    cand.failpoints.clear();
    try_keep(std::move(cand));
  }
  if (best.cancel_after_checks > 0 || best.deadline_ms > 0) {
    FuzzCase cand = best;
    cand.cancel_after_checks = 0;
    cand.deadline_ms = 0;
    try_keep(std::move(cand));
  }
  if (best.config.use_disk) {
    FuzzCase cand = best;
    cand.config.use_disk = false;
    try_keep(std::move(cand));
  }
  if (best.config.warm_layers) {
    FuzzCase cand = best;
    cand.config.warm_layers = false;
    try_keep(std::move(cand));
  }
  if (best.config.gpu_threads != 1) {
    FuzzCase cand = best;
    cand.config.gpu_threads = 1;
    try_keep(std::move(cand));
  }
  if (best.config.max_cell_bytes != (16u << 10)) {
    FuzzCase cand = best;
    cand.config.max_cell_bytes = 16 << 10;
    try_keep(std::move(cand));
  }
  for (int res : {64, 128}) {
    if (best.config.canvas_resolution != res) {
      FuzzCase cand = best;
      cand.config.canvas_resolution = res;
      try_keep(std::move(cand));
      break;
    }
  }

  // 2. Constraint down to a single part.
  if (best.query.constraint.parts.size() > 1) {
    for (const Polygon& part : best.query.constraint.parts) {
      FuzzCase cand = best;
      cand.query.constraint.parts = {part};
      if (budget <= 0) break;
      --budget;
      if (fails(cand)) {
        best = std::move(cand);
        break;
      }
    }
  }

  // 3. The datasets themselves (usually the big win).
  ShrinkDataset(&best, &FuzzCase::data2, fails, &budget);
  ShrinkDataset(&best, &FuzzCase::data, fails, &budget);

  if (best.note.empty()) {
    best.note = "shrunk from seed " + std::to_string(c.seed);
  }
  return best;
}

// ---------------------------------------------------------------------------
// Fuzz loops
// ---------------------------------------------------------------------------

uint64_t CaseSeed(uint64_t master_seed, size_t iteration) {
  // Sequential seeds keep replay trivial: a failure at iteration i is rerun
  // exactly by `spade_fuzz --seed=<reported seed> --iterations=1`.
  return master_seed + iteration;
}

FuzzLoopResult FuzzLoop(const FuzzLoopOptions& opts) {
  if (opts.ingest_mode) return IngestFuzzLoop(opts);
  if (opts.batch_mode) return BatchFuzzLoop(opts);
  if (opts.service_mode) return ServiceFuzzLoop(opts);
  FuzzLoopResult res;
  const auto log = [&opts](const std::string& m) {
    if (opts.log) opts.log(m);
  };
  for (size_t i = 0; i < opts.iterations; ++i) {
    const uint64_t seed = CaseSeed(opts.seed, i);
    const FuzzCase c = GenerateCase(seed, opts.gen);
    const RunOutcome out = RunCase(c, opts.run);
    ++res.executed;
    if (out.engine_fault) ++res.faults;
    if (out.mismatch) {
      res.failing_seeds.push_back(seed);
      if (res.first_detail.empty()) res.first_detail = out.detail;
      log("MISMATCH seed=" + std::to_string(seed) + " class=" +
          QueryClassName(c.query.cls) + ": " + out.detail);
      FuzzCase repro = c;
      if (opts.shrink) {
        repro = ShrinkCase(c, opts.run);
        log("shrunk seed=" + std::to_string(seed) + " to " +
            std::to_string(repro.data.size()) + "+" +
            std::to_string(repro.data2.size()) + " objects");
      }
      if (!opts.corpus_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opts.corpus_dir, ec);
        const std::string path = opts.corpus_dir + "/fuzz_seed_" +
                                 std::to_string(seed) + ".case";
        if (SaveCase(repro, path).ok()) {
          res.corpus_paths.push_back(path);
          log("repro written to " + path);
        }
      }
      if (opts.stop_on_failure) break;
    }
    if ((i + 1) % 200 == 0) {
      log(std::to_string(i + 1) + "/" + std::to_string(opts.iterations) +
          " cases, " + std::to_string(res.faults) + " tolerated faults, " +
          std::to_string(res.failing_seeds.size()) + " failures");
    }
  }
  return res;
}

namespace {

// Translate a case's query into a service Request over the registered
// dataset names. Non-point distance probes degrade to their bounding-box
// center (the wire request carries a point); the case is fixed up so its
// oracle answers what was actually asked.
Request BuildServiceRequest(FuzzCase* c, const std::string& d1,
                            const std::string& d2) {
  Request r;
  r.dataset = d1;
  switch (c->query.cls) {
    case QueryClass::kSelection:
      r.kind = RequestKind::kSelection;
      r.constraint = c->query.constraint;
      break;
    case QueryClass::kRange:
      r.kind = RequestKind::kRange;
      r.range = c->query.range;
      break;
    case QueryClass::kContains:
      r.kind = RequestKind::kContains;
      r.constraint = c->query.constraint;
      break;
    case QueryClass::kJoin:
      r.kind = RequestKind::kJoin;
      r.dataset2 = d2;
      break;
    case QueryClass::kDistance:
      r.kind = RequestKind::kDistance;
      r.point = c->query.probe.is_point() ? c->query.probe.point()
                                          : c->query.probe.Bounds().Center();
      c->query.probe = Geometry(r.point);
      r.radius = c->query.radius;
      break;
    case QueryClass::kDistanceJoin:
      r.kind = RequestKind::kDistanceJoin;
      r.dataset2 = d2;
      r.radius = c->query.radius;
      break;
    case QueryClass::kKnn:
      r.kind = RequestKind::kKnn;
      r.point = c->query.probe.point();
      r.k = c->query.k;
      break;
    case QueryClass::kAggregation:
      break;  // not served by the request front end
  }
  return r;
}

}  // namespace

FuzzLoopResult ServiceFuzzLoop(const FuzzLoopOptions& opts) {
  FuzzLoopResult res;
  const auto log = [&opts](const std::string& m) {
    if (opts.log) opts.log(m);
  };

  // One shared engine/service; a fixed mid-range engine config (the value
  // of this mode is concurrency, not config spread).
  SpadeConfig ecfg;
  ecfg.canvas_resolution = 128;
  ecfg.max_cell_bytes = 16 << 10;
  ecfg.gpu_threads = 2;
  ServiceConfig scfg;
  scfg.workers = static_cast<size_t>(std::max(1, opts.service_threads));
  scfg.queue_capacity = std::max<size_t>(16, opts.iterations);
  SpadeService service(ecfg, scfg);

  // The service front end covers everything except aggregation.
  GenOptions gen = opts.gen;
  if (gen.classes.empty()) {
    gen.classes =
        "selection,range,contains,join,distance,distance-join,knn";
  }
  gen.with_failpoints = false;  // deterministic responses under concurrency
  gen.with_cancellation = false;

  struct Slot {
    uint64_t seed;
    FuzzCase c;
    Request req;
    Response resp;
  };
  std::vector<Slot> slots(opts.iterations);
  for (size_t i = 0; i < opts.iterations; ++i) {
    Slot& s = slots[i];
    s.seed = CaseSeed(opts.seed, i);
    s.c = GenerateCase(s.seed, gen);
    const std::string d1 = "d" + std::to_string(i);
    const std::string d2 = "e" + std::to_string(i);
    Status st = service.RegisterSource(
        d1, MakeInMemorySource(d1, s.c.data, ecfg));
    if (st.ok() && !s.c.data2.geoms.empty()) {
      st = service.RegisterSource(d2,
                                  MakeInMemorySource(d2, s.c.data2, ecfg));
    }
    if (!st.ok()) {
      res.failing_seeds.push_back(s.seed);
      if (res.first_detail.empty()) {
        res.first_detail = "RegisterSource: " + st.ToString();
      }
      continue;
    }
    s.req = BuildServiceRequest(&s.c, d1, d2);
  }

  // Fire all requests from `service_threads` caller threads.
  std::atomic<size_t> next{0};
  std::vector<std::thread> callers;
  const int nthreads = std::max(1, opts.service_threads);
  callers.reserve(static_cast<size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    callers.emplace_back([&slots, &next, &service] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= slots.size()) return;
        slots[i].resp = service.Execute(slots[i].req);
      }
    });
  }
  for (auto& t : callers) t.join();
  service.Shutdown();

  for (Slot& s : slots) {
    ++res.executed;
    if (s.resp.status.code() == Status::Code::kOverloaded) {
      ++res.overloaded;
      continue;
    }
    std::string detail;
    if (!s.resp.status.ok()) {
      detail = "service error: " + s.resp.status.ToString();
    } else {
      Answer engine;
      engine.ids = s.resp.ids;
      engine.pairs = s.resp.pairs;
      engine.neighbors = s.resp.neighbors;
      detail = CompareAnswers(s.c, engine, OracleAnswer(s.c));
    }
    if (!detail.empty()) {
      res.failing_seeds.push_back(s.seed);
      if (res.first_detail.empty()) res.first_detail = detail;
      log("SERVICE MISMATCH seed=" + std::to_string(s.seed) + " class=" +
          QueryClassName(s.c.query.cls) + ": " + detail);
    }
  }
  log("service mode: " + std::to_string(res.executed) + " requests, " +
      std::to_string(res.overloaded) + " overloaded, " +
      std::to_string(res.failing_seeds.size()) + " failures");
  return res;
}

FuzzLoopResult BatchFuzzLoop(const FuzzLoopOptions& opts) {
  FuzzLoopResult res;
  const auto log = [&opts](const std::string& m) {
    if (opts.log) opts.log(m);
  };

  SpadeConfig ecfg;
  ecfg.canvas_resolution = 128;
  ecfg.max_cell_bytes = 16 << 10;
  ecfg.gpu_threads = 2;
  ServiceConfig scfg;
  scfg.workers =
      std::max<size_t>(4, static_cast<size_t>(std::max(1, opts.service_threads)));
  scfg.queue_capacity = std::max<size_t>(16, opts.iterations);
  scfg.batch_enabled = true;
  scfg.batch_window_ms = opts.batch_window_ms;
  scfg.batch_max_members = 8;
  SpadeService service(ecfg, scfg);

  // The batchable classes plus kNN (which exercises the scheduler's
  // fall-through to the solo path under concurrency).
  GenOptions gen = opts.gen;
  if (gen.classes.empty()) {
    gen.classes = "selection,range,contains,distance,knn";
  }
  gen.with_failpoints = false;   // deterministic responses under concurrency
  gen.with_cancellation = false; // schedules are injected below instead

  // Consecutive cases form cohorts over ONE shared dataset, pinned to the
  // leader's query class so the data kind fits every member. The last
  // member repeats the leader's query verbatim — the guaranteed duplicate
  // that exercises shared passes and the result cache.
  constexpr size_t kCohort = 4;

  struct Slot {
    uint64_t seed = 0;
    FuzzCase c;
    Request req;
    Response resp;
    std::shared_ptr<CancelToken> token;  ///< set when cancelled mid-flight
    bool skip = false;                   ///< cohort registration failed
  };
  std::vector<Slot> slots(opts.iterations);
  for (size_t i = 0; i < opts.iterations; ++i) {
    Slot& s = slots[i];
    s.seed = CaseSeed(opts.seed, i);
    const size_t leader = i - (i % kCohort);
    GenOptions g = gen;
    if (i != leader) g.classes = QueryClassName(slots[leader].c.query.cls);
    s.c = GenerateCase(s.seed, g);
    s.c.data2 = SpatialDataset{};  // batchable classes are single-dataset
    const std::string dname = "d" + std::to_string(leader);
    if (i == leader) {
      Status st =
          service.RegisterSource(dname, MakeInMemorySource(dname, s.c.data, ecfg));
      if (!st.ok()) {
        res.failing_seeds.push_back(s.seed);
        if (res.first_detail.empty()) {
          res.first_detail = "RegisterSource: " + st.ToString();
        }
        s.skip = true;
        continue;
      }
    } else {
      if (slots[leader].skip) {
        s.skip = true;
        continue;
      }
      // Run (and judge) the follower against the cohort's shared dataset.
      s.c.data = slots[leader].c.data;
      if (i % kCohort == kCohort - 1) s.c.query = slots[leader].c.query;
    }
    s.req = BuildServiceRequest(&s.c, dname, "");

    // Cancellation / deadline schedules on a deterministic slice of the
    // members: both may legitimately end a query early with a typed
    // error, and neither may ever corrupt a batch-mate's answer.
    if (s.seed % 11 == 3) {
      s.req.timeout_ms = 0.25 * static_cast<double>(1 + s.seed % 8);
    } else if (s.seed % 11 == 7) {
      s.token = std::make_shared<CancelToken>();
    }
  }

  std::atomic<size_t> next{0};
  std::vector<std::thread> callers;
  const int nthreads = std::max(1, opts.service_threads);
  callers.reserve(static_cast<size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) {
    callers.emplace_back([&slots, &next, &service] {
      for (;;) {
        const size_t i = next.fetch_add(1);
        if (i >= slots.size()) return;
        Slot& s = slots[i];
        if (s.skip) continue;
        if (s.token == nullptr) {
          s.resp = service.Execute(s.req);
          continue;
        }
        // Mid-flight cancellation: let the request reach the gather
        // window (or execution), then pull the plug.
        std::future<Response> fut = service.Submit(s.req, s.token);
        std::this_thread::sleep_for(
            std::chrono::microseconds(200 * (1 + s.seed % 10)));
        s.token->Cancel("fuzz cancel");
        s.resp = fut.get();
      }
    });
  }
  for (auto& t : callers) t.join();
  service.Shutdown();

  for (Slot& s : slots) {
    if (s.skip) continue;
    ++res.executed;
    const Status::Code code = s.resp.status.code();
    if (code == Status::Code::kOverloaded) {
      ++res.overloaded;
      continue;
    }
    if (code == Status::Code::kCancelled ||
        code == Status::Code::kDeadlineExceeded) {
      ++res.faults;  // tolerated typed early exit
      continue;
    }
    std::string detail;
    if (!s.resp.status.ok()) {
      detail = "service error: " + s.resp.status.ToString();
    } else {
      Answer engine;
      engine.ids = s.resp.ids;
      engine.pairs = s.resp.pairs;
      engine.neighbors = s.resp.neighbors;
      detail = CompareAnswers(s.c, engine, OracleAnswer(s.c));
    }
    if (detail.empty()) continue;
    res.failing_seeds.push_back(s.seed);
    if (res.first_detail.empty()) res.first_detail = detail;
    log("BATCH MISMATCH seed=" + std::to_string(s.seed) + " class=" +
        QueryClassName(s.c.query.cls) + ": " + detail);
    if (!opts.corpus_dir.empty()) {
      // A divergence that also fails solo is an engine bug — shrink it as
      // usual. One that only reproduces under concurrent batching is
      // saved verbatim, flagged in its note.
      FuzzCase repro = s.c;
      if (opts.shrink && RunCase(repro, opts.run).mismatch) {
        repro = ShrinkCase(repro, opts.run);
      } else {
        repro.note = "batch-mode divergence (seed " + std::to_string(s.seed) +
                     "; not solo-reproducible as saved)";
      }
      std::error_code ec;
      std::filesystem::create_directories(opts.corpus_dir, ec);
      const std::string path = opts.corpus_dir + "/batch_seed_" +
                               std::to_string(s.seed) + ".case";
      if (SaveCase(repro, path).ok()) {
        res.corpus_paths.push_back(path);
        log("repro written to " + path);
      }
    }
  }
  log("batch mode: " + std::to_string(res.executed) + " requests, " +
      std::to_string(res.faults) + " tolerated faults, " +
      std::to_string(res.overloaded) + " overloaded, " +
      std::to_string(res.failing_seeds.size()) + " failures");
  return res;
}

FuzzLoopResult IngestFuzzLoop(const FuzzLoopOptions& opts) {
  FuzzLoopResult res;
  const auto log = [&opts](const std::string& m) {
    if (opts.log) opts.log(m);
  };

  std::error_code ec;
  std::string scratch = opts.run.scratch_dir;
  if (scratch.empty()) {
    scratch = std::filesystem::temp_directory_path(ec).string();
  }
  const std::string tag = std::to_string(opts.seed);
  const std::string merge_dir = scratch + "/ingest_fuzz_merge_" + tag;
  const std::string csv_path = scratch + "/ingest_fuzz_tail_" + tag + ".csv";
  std::filesystem::remove_all(merge_dir, ec);
  std::filesystem::remove(csv_path, ec);

  SpadeConfig ecfg;
  ecfg.canvas_resolution = 128;
  ecfg.max_cell_bytes = 16 << 10;
  ecfg.gpu_threads = 2;
  SpadeEngine engine(ecfg);

  ingest::IngestOptions iopts;
  iopts.extent = Box(0, 0, 64, 64);
  iopts.zoom = 3;
  iopts.merge_threshold = 96;  // low: merges trip constantly under fuzz
  iopts.merge_dir = merge_dir;
  auto made = ingest::MakeIngestSource("fuzz_stream", iopts);
  if (!made.ok()) {
    res.first_detail = "MakeIngestSource: " + made.status().ToString();
    res.failing_seeds.push_back(opts.seed);
    return res;
  }
  auto src = made.value();
  ingest::CsvTailer tailer(src);

  // The oracle: rows in append order (GeomId == index) plus the visible
  // prefix length after each sealed epoch. A snapshot pinned at epoch e
  // must answer over exactly shadow[0, rows_at_epoch[e]).
  std::vector<Vec2> shadow;
  std::vector<size_t> rows_at_epoch{0};
  bool merge_fp_armed = false;
  bool csv_started = false;

  auto random_points = [&](PortableRng& rng, size_t n) {
    std::vector<Vec2> pts;
    pts.reserve(n);
    for (size_t j = 0; j < n; ++j) {
      pts.push_back(Vec2{rng.Uniform(0, 64), rng.Uniform(0, 64)});
    }
    return pts;
  };
  auto record_epoch = [&](uint64_t sealed, const std::vector<Vec2>& pts,
                          std::string* detail) {
    if (sealed != rows_at_epoch.size()) {
      *detail = "append sealed epoch " + std::to_string(sealed) +
                ", oracle expected " + std::to_string(rows_at_epoch.size());
      return;
    }
    shadow.insert(shadow.end(), pts.begin(), pts.end());
    rows_at_epoch.push_back(shadow.size());
  };
  // A rejected write must be invisible: same epoch, same row count.
  auto check_unchanged = [&](const char* what, std::string* detail) {
    if (src->snapshot_epoch() != rows_at_epoch.size() - 1 ||
        src->num_objects() != shadow.size()) {
      *detail = std::string(what) + " mutated the source: epoch " +
                std::to_string(src->snapshot_epoch()) + "/" +
                std::to_string(rows_at_epoch.size() - 1) + ", rows " +
                std::to_string(src->num_objects()) + "/" +
                std::to_string(shadow.size());
    }
  };

  auto run_query = [&](PortableRng& rng) -> std::string {
    auto snap = src->PinSnapshot();
    // Half the queries race an append sealed AFTER the pin: the pinned
    // epoch must keep answering as if the world had stopped.
    if (rng.Chance(0.5)) {
      auto pts = random_points(rng, 1 + static_cast<size_t>(rng.UniformInt(0, 19)));
      auto r = src->Append(pts);
      if (!r.ok()) return "racing append failed: " + r.status().ToString();
      std::string detail;
      record_epoch(r.value(), pts, &detail);
      if (!detail.empty()) return detail;
    }
    const uint64_t e = snap->snapshot_epoch();
    if (e >= rows_at_epoch.size()) {
      return "snapshot pinned unknown epoch " + std::to_string(e);
    }
    const size_t prefix = rows_at_epoch[e];
    if (snap->num_objects() != prefix) {
      return "snapshot at epoch " + std::to_string(e) + " reports " +
             std::to_string(snap->num_objects()) + " rows, oracle " +
             std::to_string(prefix);
    }
    if (prefix == 0) return "";

    if (rng.Chance(0.7)) {
      double x0 = rng.Uniform(0, 64), x1 = rng.Uniform(0, 64);
      double y0 = rng.Uniform(0, 64), y1 = rng.Uniform(0, 64);
      const Box box(std::min(x0, x1), std::min(y0, y1), std::max(x0, x1),
                    std::max(y0, y1));
      auto r = engine.RangeSelection(*snap, box);
      if (!r.ok()) return "RangeSelection: " + r.status().ToString();
      std::vector<GeomId> want;
      for (size_t j = 0; j < prefix; ++j) {
        if (shadow[j].x >= box.min.x && shadow[j].x <= box.max.x &&
            shadow[j].y >= box.min.y && shadow[j].y <= box.max.y) {
          want.push_back(static_cast<GeomId>(j));
        }
      }
      return DiffIds(("range@epoch " + std::to_string(e)).c_str(),
                     r.value().ids, want);
    }

    const Vec2 probe{rng.Uniform(0, 64), rng.Uniform(0, 64)};
    const size_t k = static_cast<size_t>(rng.UniformInt(1, 8));
    auto r = engine.KnnSelection(*snap, probe, k);
    if (!r.ok()) return "KnnSelection: " + r.status().ToString();
    std::vector<double> dists;
    dists.reserve(prefix);
    for (size_t j = 0; j < prefix; ++j) {
      dists.push_back(std::hypot(shadow[j].x - probe.x, shadow[j].y - probe.y));
    }
    std::vector<double> sorted = dists;
    std::sort(sorted.begin(), sorted.end());
    const size_t want_n = std::min(k, prefix);
    const auto& got = r.value().neighbors;
    if (got.size() != want_n) {
      return "knn@epoch " + std::to_string(e) + ": engine returned " +
             std::to_string(got.size()) + " neighbors, oracle " +
             std::to_string(want_n);
    }
    for (size_t j = 0; j < want_n; ++j) {
      const GeomId id = got[j].first;
      if (id >= prefix) {
        return "knn@epoch " + std::to_string(e) + ": neighbor id " +
               std::to_string(id) + " from a later epoch (visible prefix " +
               std::to_string(prefix) + ")";
      }
      if (std::abs(got[j].second - sorted[j]) > 1e-9 ||
          std::abs(dists[id] - got[j].second) > 1e-9) {
        return "knn@epoch " + std::to_string(e) + ": neighbor " +
               std::to_string(j) + " distance " + std::to_string(got[j].second) +
               ", oracle " + std::to_string(sorted[j]);
      }
    }
    return "";
  };

  for (size_t i = 0; i < opts.iterations; ++i) {
    const uint64_t seed = CaseSeed(opts.seed, i);
    PortableRng rng(SplitMix64(seed));
    std::string detail;
    ++res.executed;

    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2: {  // plain append
        auto pts = random_points(
            rng, 1 + static_cast<size_t>(rng.UniformInt(0, 39)));
        auto r = src->Append(pts);
        if (!r.ok()) {
          detail = "append failed: " + r.status().ToString();
        } else {
          record_epoch(r.value(), pts, &detail);
        }
        break;
      }
      case 3: {  // mid-ingest cancellation: all-or-nothing
        CancelToken token;
        token.CancelAfterChecks(1);
        auto r = src->Append(random_points(rng, 600), &token);
        if (r.ok() || r.status().code() != Status::Code::kCancelled) {
          detail = "cancelled append returned " +
                   (r.ok() ? std::string("OK") : r.status().ToString());
        } else {
          ++res.faults;
          check_unchanged("cancelled append", &detail);
        }
        break;
      }
      case 4: {  // out-of-extent point poisons the whole batch
        auto pts = random_points(
            rng, 1 + static_cast<size_t>(rng.UniformInt(0, 9)));
        pts.insert(pts.begin() + rng.UniformInt(0, static_cast<int64_t>(
                                                      pts.size())),
                   Vec2{65.0, rng.Uniform(0, 64)});
        auto r = src->Append(pts);
        if (r.ok() || r.status().code() != Status::Code::kInvalidArgument) {
          detail = "out-of-extent append returned " +
                   (r.ok() ? std::string("OK") : r.status().ToString());
        } else {
          ++res.faults;
          check_unchanged("rejected append", &detail);
        }
        break;
      }
      case 5: {  // toggle the merge failpoint (merges fail and retry)
        if (merge_fp_armed) {
          failpoint::Clear("ingest.merge");
        } else {
          failpoint::Spec spec;
          spec.code = Status::Code::kIOError;
          spec.probability = 0.5;
          spec.seed = seed;
          failpoint::Set("ingest.merge", spec);
        }
        merge_fp_armed = !merge_fp_armed;
        break;
      }
      case 6: {  // forced merge; failures are tolerated only when injected
        Status st = src->ForceMerge();
        if (!st.ok()) {
          if (merge_fp_armed) {
            ++res.faults;
          } else {
            detail = "ForceMerge: " + st.ToString();
          }
        }
        break;
      }
      case 7: {  // CSV tail with malformed rows sprinkled in
        std::vector<Vec2> valid;
        {
          std::ofstream out(csv_path, std::ios::app);
          // Round-trip exact doubles: the oracle stores the value written.
          out << std::setprecision(17);
          const size_t lines =
              1 + static_cast<size_t>(rng.UniformInt(0, 9));
          for (size_t j = 0; j < lines; ++j) {
            // The first line ever written must parse (the tailer's header
            // heuristic would otherwise swallow a malformed line 1).
            if (csv_started && rng.Chance(0.25)) {
              out << "bogus line " << rng.NextU64() << "\n";
            } else {
              const Vec2 p{rng.Uniform(0, 64), rng.Uniform(0, 64)};
              out << p.x << "," << p.y << "\n";
              valid.push_back(p);
            }
            csv_started = true;
          }
        }
        auto r = tailer.Tail(csv_path);
        if (!r.ok()) {
          detail = "Tail: " + r.status().ToString();
        } else if (r.value() != valid.size()) {
          detail = "Tail appended " + std::to_string(r.value()) +
                   " rows, wrote " + std::to_string(valid.size());
        } else if (!valid.empty()) {
          record_epoch(src->snapshot_epoch(), valid, &detail);
        }
        break;
      }
      default: {  // snapshot-pinned differential query
        detail = run_query(rng);
        break;
      }
    }

    if (detail.empty() && src->num_objects() != shadow.size()) {
      detail = "row-count drift: source " + std::to_string(src->num_objects()) +
               ", oracle " + std::to_string(shadow.size());
    }
    if (!detail.empty()) {
      res.failing_seeds.push_back(seed);
      if (res.first_detail.empty()) res.first_detail = detail;
      log("INGEST MISMATCH seed=" + std::to_string(seed) + " iteration=" +
          std::to_string(i) + ": " + detail);
      if (!opts.corpus_dir.empty()) {
        // Ingest failures depend on the whole op interleaving, so the
        // repro is the loop itself: record the exact rerun command.
        std::filesystem::create_directories(opts.corpus_dir, ec);
        const std::string path = opts.corpus_dir + "/ingest_seed_" +
                                 std::to_string(seed) + ".txt";
        std::ofstream out(path, std::ios::trunc);
        out << "spade_fuzz --ingest --seed=" << opts.seed
            << " --iterations=" << (i + 1) << "\n"
            << "failing iteration: " << i << " (case seed " << seed << ")\n"
            << detail << "\n";
        if (out.good()) {
          res.corpus_paths.push_back(path);
          log("repro written to " + path);
        }
      }
      if (opts.stop_on_failure) break;
    }
    if ((i + 1) % 200 == 0) {
      log(std::to_string(i + 1) + "/" + std::to_string(opts.iterations) +
          " ops, epoch " + std::to_string(src->snapshot_epoch()) + ", " +
          std::to_string(shadow.size()) + " rows, " +
          std::to_string(res.faults) + " tolerated faults, " +
          std::to_string(res.failing_seeds.size()) + " failures");
    }
  }

  failpoint::Clear("ingest.merge");
  // Final sweep: the latest snapshot must hold exactly the oracle rows.
  if (res.failing_seeds.empty() && !shadow.empty()) {
    auto snap = src->PinSnapshot();
    auto r = engine.RangeSelection(*snap, Box(0, 0, 64, 64));
    std::string detail;
    if (!r.ok()) {
      detail = "final RangeSelection: " + r.status().ToString();
    } else if (r.value().ids.size() != shadow.size()) {
      detail = "final sweep returned " + std::to_string(r.value().ids.size()) +
               " rows, oracle " + std::to_string(shadow.size());
    }
    if (!detail.empty()) {
      res.failing_seeds.push_back(opts.seed);
      res.first_detail = detail;
      log("INGEST MISMATCH (final sweep): " + detail);
    }
  }
  const auto stats = src->GetStats();
  log("ingest mode: " + std::to_string(res.executed) + " ops, " +
      std::to_string(shadow.size()) + " rows over " +
      std::to_string(rows_at_epoch.size() - 1) + " epochs, " +
      std::to_string(stats.merges) + " merges (" +
      std::to_string(stats.merge_failures) + " injected failures), " +
      std::to_string(res.faults) + " tolerated faults, " +
      std::to_string(res.failing_seeds.size()) + " failures");
  std::filesystem::remove_all(merge_dir, ec);
  std::filesystem::remove(csv_path, ec);
  return res;
}

}  // namespace fuzz
}  // namespace spade
