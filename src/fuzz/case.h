// A FuzzCase is one self-contained differential experiment: a concrete
// dataset (plus a second one for joins/aggregations), a query from one of
// the five classes, the engine configuration to run it under, and an
// optional failpoint schedule. Cases are either derived deterministically
// from a 64-bit seed (GenerateCase — the fuzz loop) or parsed back from a
// corpus file (ParseCase — regression replay of minimized repros).
#pragma once

#include <cstdint>
#include <string>

#include "common/config.h"
#include "common/status.h"
#include "storage/dataset.h"

namespace spade {
namespace fuzz {

/// Query classes under differential test. Range/Contains are variants of
/// selection; DistanceJoin of distance — the five paper classes are all
/// covered (selection, join, distance, kNN, aggregation).
enum class QueryClass {
  kSelection,
  kRange,
  kContains,
  kJoin,
  kDistance,
  kDistanceJoin,
  kAggregation,
  kKnn,
};

const char* QueryClassName(QueryClass c);
Result<QueryClass> QueryClassFromName(const std::string& name);

/// Engine knobs the fuzzer randomizes per case.
struct CaseConfig {
  int canvas_resolution = 128;
  size_t max_cell_bytes = 16 << 10;
  size_t device_memory_budget = 256ull << 20;
  int gpu_threads = 2;
  bool warm_layers = false;  ///< pre-build layer indexes before querying
  bool use_disk = false;     ///< route the primary dataset through DiskSource

  SpadeConfig ToSpadeConfig() const;
};

/// The query of a case; which fields matter depends on `cls`.
struct CaseQuery {
  QueryClass cls = QueryClass::kSelection;
  MultiPolygon constraint;     ///< selection / contains
  Box range;                   ///< range
  Geometry probe;              ///< distance probe (point / line / polygon)
  double radius = 0;           ///< distance / distance join
  size_t k = 0;                ///< kNN
};

/// \brief One reproducible engine-vs-oracle experiment.
struct FuzzCase {
  uint64_t seed = 0;        ///< generating seed (0 for hand-written cases)
  std::string note;         ///< free-form provenance, kept through replay
  CaseConfig config;
  CaseQuery query;
  SpatialDataset data;      ///< primary dataset
  SpatialDataset data2;     ///< join other side / aggregation constraints
  std::string failpoints;   ///< SPADE_FAILPOINTS schedule ("" = none)
  /// Deterministic cancellation point: trip the query's token on its n-th
  /// cooperative check (0 = disarmed). Wall-clock independent, so replay
  /// cancels at exactly the same point on every run. The invariant under
  /// test: a tripped query returns a typed Cancelled error, never a
  /// partial result dressed as success.
  int64_t cancel_after_checks = 0;
  /// Wall-clock deadline for the run (0 = none). Nondeterministic where
  /// it trips, so the check is one-sided: DeadlineExceeded or an exactly
  /// right answer are both acceptable.
  double deadline_ms = 0;
};

/// Knobs of random case generation.
struct GenOptions {
  size_t max_objects = 600;      ///< primary dataset size cap
  bool with_failpoints = false;  ///< arm a random failpoint schedule on
                                 ///< ~1 in 6 cases
  bool with_cancellation = false;  ///< arm a random cancellation point or
                                   ///< deadline on ~1 in 6 cases
  /// Restrict to one class (empty = all). Comma-separated class names.
  std::string classes;
};

/// Deterministically derive a case from `seed`: same seed, same bytes, on
/// every platform (all randomness flows through PortableRng).
FuzzCase GenerateCase(uint64_t seed, const GenOptions& opts);

/// Serialize to / parse from the corpus text format (see docs/testing.md).
std::string FormatCase(const FuzzCase& c);
Result<FuzzCase> ParseCase(const std::string& text);

/// File convenience wrappers around Format/Parse.
Status SaveCase(const FuzzCase& c, const std::string& path);
Result<FuzzCase> LoadCase(const std::string& path);

}  // namespace fuzz
}  // namespace spade
