#include "ingest/csv_tail.h"

#include <fstream>
#include <vector>

namespace spade {
namespace ingest {

Result<size_t> CsvTailer::Tail(const std::string& path,
                               const CsvLoadOptions& options,
                               CancelToken* cancel) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("cannot open " + path);
  in.seekg(0, std::ios::end);
  const uint64_t size = static_cast<uint64_t>(in.tellg());
  uint64_t offset = offsets_[path];
  // A shrunk file was truncated or rotated: start over from the top.
  if (offset > size) offset = 0;
  if (offset == size) {
    if (options.skipped_rows != nullptr) *options.skipped_rows = 0;
    return static_cast<size_t>(0);
  }

  in.seekg(static_cast<std::streamoff>(offset));
  std::string buf(size - offset, '\0');
  in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (in.gcount() != static_cast<std::streamsize>(buf.size())) {
    return Status::IOError("short read from " + path);
  }

  // Scan complete lines, tracking how many bytes a successful call will
  // consume. The header heuristic only applies to the first line of the
  // FILE (offset 0), mirroring LoadPointsCsv.
  std::vector<Vec2> points;
  size_t skipped = 0;
  uint64_t consumed = 0;
  bool first_of_file = offset == 0;
  size_t start = 0;
  while (start < buf.size()) {
    const size_t nl = buf.find('\n', start);
    if (nl == std::string::npos) break;  // partial trailing line: mid-write
    const std::string line = buf.substr(start, nl - start);
    start = nl + 1;
    consumed = start;
    if (line.empty() || line == "\r") continue;
    Vec2 p;
    if (!ParseCsvPointLine(line, options, &p)) {
      if (!first_of_file) ++skipped;
      first_of_file = false;
      continue;
    }
    first_of_file = false;
    points.push_back(p);
    if (options.max_rows != 0 && points.size() >= options.max_rows) break;
  }

  if (options.skipped_rows != nullptr) *options.skipped_rows = skipped;
  if (skipped > options.max_skipped_rows) {
    return Status::InvalidArgument(
        path + ": " + std::to_string(skipped) +
        " malformed rows exceed max_skipped_rows=" +
        std::to_string(options.max_skipped_rows));
  }
  if (points.empty()) {
    // Nothing appendable, but the scanned lines are settled (headers,
    // blanks, tolerated bad rows): don't re-scan them next call.
    offsets_[path] = offset + consumed;
    return static_cast<size_t>(0);
  }

  SPADE_ASSIGN_OR_RETURN(uint64_t epoch, source_->Append(points, cancel));
  (void)epoch;
  offsets_[path] = offset + consumed;
  return points.size();
}

void CsvTailer::Reset(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  offsets_.erase(path);
}

}  // namespace ingest
}  // namespace spade
