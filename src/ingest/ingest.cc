#include "ingest/ingest.h"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "common/failpoint.h"
#include "common/mmap_file.h"
#include "common/stopwatch.h"
#include "geom/convex_hull.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/block.h"

namespace spade {
namespace ingest {

namespace fs = std::filesystem;

namespace {

obs::Counter* AppendsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_ingest_appends_total");
  return c;
}
obs::Counter* RowsCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_ingest_rows_total");
  return c;
}
obs::Counter* MergesCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_ingest_merges_total");
  return c;
}
obs::Counter* MergeFailuresCounter() {
  static obs::Counter* c = obs::MetricsRegistry::Global().counter(
      "spade_ingest_merge_failures_total");
  return c;
}
obs::Counter* RejectedCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().counter("spade_ingest_rejected_total");
  return c;
}

size_t PointRowBytes() {
  static const size_t bytes = Geometry(Vec2{0, 0}).ByteSize();
  return bytes;
}

}  // namespace

// ---------------------------------------------------------------------------
// IngestSnapshot: an immutable epoch-pinned view of an IngestSource. It
// shares the parent's uid — prepared-cell / result caches disambiguate by
// cell_version — and pins the parent's published index, which stays alive
// through the parent's index history.
// ---------------------------------------------------------------------------

class IngestSnapshot : public CellSource {
 public:
  IngestSnapshot(const IngestSource* parent, uint64_t epoch,
                 size_t num_objects, std::shared_ptr<const GridIndex> index)
      : CellSource(parent->uid()),
        parent_(parent),
        epoch_(epoch),
        num_objects_(num_objects),
        index_(std::move(index)) {}

  const std::string& name() const override { return parent_->name_; }
  const GridIndex& index() const override { return *index_; }
  size_t num_objects() const override { return num_objects_; }
  GeomType primary_type() const override { return GeomType::kPoint; }

  Result<std::shared_ptr<const CellData>> LoadCell(
      size_t cell, QueryStats* stats) override {
    return parent_->LoadCellAtEpoch(cell, epoch_, stats);
  }

  uint64_t cell_version(size_t cell) const override {
    return parent_->CellVersionAtEpoch(cell, epoch_);
  }

  uint64_t snapshot_epoch() const override { return epoch_; }

  bool CellMayContain(size_t cell,
                      const std::vector<bool>& wanted) const override {
    // Conservative: any visible row may be wanted. The engine re-filters
    // loaded rows by id, so false positives only cost a cell load.
    (void)wanted;
    return parent_->CellVisibleAtEpoch(cell, epoch_);
  }

 private:
  const IngestSource* parent_;
  const uint64_t epoch_;
  const size_t num_objects_;
  const std::shared_ptr<const GridIndex> index_;
};

// ---------------------------------------------------------------------------
// IngestSource
// ---------------------------------------------------------------------------

IngestSource::IngestSource(std::string name, const IngestOptions& options)
    : name_(std::move(name)),
      options_(options),
      cell_w_(options.extent.Width() / (1 << options.zoom)),
      cell_h_(options.extent.Height() / (1 << options.zoom)) {
  auto idx = std::make_shared<GridIndex>();
  idx->extent = options_.extent;
  idx->zoom = options_.zoom;
  index_ = std::move(idx);
}

const GridIndex& IngestSource::index() const {
  // The raw source reads "latest"; published indexes are never destroyed
  // (each publish is a full copy retained by the snapshots pinning it and
  // by index_), so the reference stays valid for the source's lifetime.
  std::lock_guard<std::mutex> lock(mu_);
  return *index_;
}

size_t IngestSource::num_objects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_rows_;
}

uint64_t IngestSource::snapshot_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Result<std::shared_ptr<const CellData>> IngestSource::LoadCell(
    size_t cell, QueryStats* stats) {
  return LoadCellAtEpoch(cell, std::numeric_limits<uint64_t>::max(), stats);
}

uint64_t IngestSource::cell_version(size_t cell) const {
  return CellVersionAtEpoch(cell, std::numeric_limits<uint64_t>::max());
}

bool IngestSource::CellMayContain(size_t cell,
                                  const std::vector<bool>& wanted) const {
  (void)wanted;
  return CellVisibleAtEpoch(cell, std::numeric_limits<uint64_t>::max());
}

std::string IngestSource::CellFilePath(size_t cell) const {
  return options_.merge_dir + "/cell_" + std::to_string(cell) + ".blk";
}

size_t IngestSource::VisibleRows(const Cell& cell, uint64_t epoch) const {
  return static_cast<size_t>(
      std::upper_bound(cell.epochs.begin(), cell.epochs.end(), epoch) -
      cell.epochs.begin());
}

uint64_t IngestSource::CellVersionAtEpoch(size_t cell, uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cell >= cells_.size()) return 0;
  const Cell& c = cells_[cell];
  const size_t k = VisibleRows(c, epoch);
  return k == 0 ? 0 : c.epochs[k - 1];
}

bool IngestSource::CellVisibleAtEpoch(size_t cell, uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cell >= cells_.size()) return false;
  const Cell& c = cells_[cell];
  return !c.epochs.empty() && c.epochs.front() <= epoch;
}

Result<std::shared_ptr<const CellData>> IngestSource::LoadCellAtEpoch(
    size_t cell, uint64_t epoch, QueryStats* stats) const {
  Stopwatch sw;
  auto data = std::make_shared<CellData>();
  size_t from_file = 0;
  std::vector<Geometry> tail;
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cell >= cells_.size()) {
      // A cell born after the pinned epoch: visible contents are empty.
      // (The snapshot's index cannot name it, but defensive callers may.)
      return std::shared_ptr<const CellData>(std::move(data));
    }
    const Cell& c = cells_[cell];
    const size_t k = VisibleRows(c, epoch);
    data->ids.assign(c.ids.begin(), c.ids.begin() + k);
    data->bytes = k * c.row_bytes;
    from_file = std::min(k, c.merged_rows);
    // Delta tail [merged_rows, k) is copied under the lock — a concurrent
    // merge may clear delta_pts the moment we release it.
    tail.reserve(k > c.merged_rows ? k - c.merged_rows : 0);
    for (size_t r = c.merged_rows; r < k; ++r) {
      tail.emplace_back(c.delta_pts[r - c.merged_rows]);
    }
    if (from_file > 0) path = CellFilePath(cell);
  }

  if (from_file == 0) {
    data->geoms = std::move(tail);
  } else {
    // Read the merged prefix outside the lock. Merges only append rows to
    // the block file (atomic tmp+rename publish), so the file always holds
    // at least `from_file` rows — a shorter read is corruption.
    auto file = MmapFile::Open(path);
    if (!file.ok()) return file.status();
    std::vector<GeomId> file_ids;
    std::vector<Geometry> file_geoms;
    BlockReadInfo info;
    const Status st = DeserializeBlock(file.value().data(),
                                       file.value().size(), &file_ids,
                                       &file_geoms, &info);
    if (info.checksum_failed && stats != nullptr) stats->checksum_failures++;
    if (!st.ok()) return st;
    if (file_geoms.size() < from_file) {
      return Status::IOError("merged block " + path + " truncated: " +
                             std::to_string(file_geoms.size()) + " rows, need " +
                             std::to_string(from_file));
    }
    data->geoms.reserve(from_file + tail.size());
    for (size_t r = 0; r < from_file; ++r) {
      data->geoms.push_back(std::move(file_geoms[r]));
    }
    for (auto& g : tail) data->geoms.push_back(std::move(g));
  }

  if (stats != nullptr) {
    stats->io_seconds += sw.ElapsedSeconds();
    stats->bytes_transferred += static_cast<int64_t>(data->bytes);
  }
  return std::shared_ptr<const CellData>(std::move(data));
}

Result<uint64_t> IngestSource::Append(const std::vector<Vec2>& points,
                                      CancelToken* cancel) {
  SPADE_TRACE_SPAN("ingest.append");
  auto reject = [this](Status st) -> Result<uint64_t> {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected_batches;
    }
    RejectedCounter()->Add(1);
    return st;
  };

  if (points.empty()) {
    return reject(Status::InvalidArgument("empty append batch"));
  }
  {
    Status fp = failpoint::AnyActive() ? failpoint::Check("ingest.append")
                                       : Status::OK();
    if (!fp.ok()) return reject(std::move(fp));
  }

  // Stage outside the lock: validate the extent, assign grid coordinates,
  // honor cancellation. Nothing becomes visible until the batch seals.
  const int res = 1 << options_.zoom;
  std::vector<std::pair<int, int>> coords;
  coords.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    if ((i & 0xFF) == 0 && cancel != nullptr) {
      Status st = cancel->Check();
      if (!st.ok()) return reject(std::move(st));
    }
    const Vec2& p = points[i];
    if (p.x < options_.extent.min.x || p.x > options_.extent.max.x ||
        p.y < options_.extent.min.y || p.y > options_.extent.max.y) {
      return reject(Status::InvalidArgument(
          "point (" + std::to_string(p.x) + ", " + std::to_string(p.y) +
          ") outside ingest extent of '" + name_ + "'"));
    }
    const int cx = std::clamp(
        static_cast<int>((p.x - options_.extent.min.x) / cell_w_), 0, res - 1);
    const int cy = std::clamp(
        static_cast<int>((p.y - options_.extent.min.y) / cell_h_), 0, res - 1);
    coords.emplace_back(cx, cy);
  }
  if (cancel != nullptr) {
    Status st = cancel->Check();
    if (!st.ok()) return reject(std::move(st));
  }

  MutationEvent append_event;
  MutationEvent merge_event;
  bool merged_any = false;
  uint64_t sealed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed = ++epoch_;

    // Route rows into cells, creating cells on first touch (appended at
    // the end: indices are stable, older snapshots simply never see them).
    std::shared_ptr<GridIndex> next_index;
    auto mutable_index = [&]() -> GridIndex* {
      if (next_index == nullptr) next_index = std::make_shared<GridIndex>(*index_);
      return next_index.get();
    };
    std::vector<size_t> touched;
    std::vector<std::vector<Vec2>> touched_pts;
    for (size_t i = 0; i < points.size(); ++i) {
      size_t ci;
      auto it = cell_by_coord_.find(coords[i]);
      if (it != cell_by_coord_.end()) {
        ci = it->second;
      } else {
        ci = cells_.size();
        cell_by_coord_.emplace(coords[i], ci);
        cells_.emplace_back();
        cells_.back().row_bytes = PointRowBytes();
        GridCell gc;
        gc.cx = coords[i].first;
        gc.cy = coords[i].second;
        mutable_index()->cells.push_back(std::move(gc));
      }
      Cell& c = cells_[ci];
      c.epochs.push_back(sealed);
      c.ids.push_back(static_cast<GeomId>(num_rows_++));
      c.delta_pts.push_back(points[i]);
      size_t slot = touched.size();
      for (size_t t = 0; t < touched.size(); ++t) {
        if (touched[t] == ci) {
          slot = t;
          break;
        }
      }
      if (slot == touched.size()) {
        touched.push_back(ci);
        touched_pts.emplace_back();
      }
      touched_pts[slot].push_back(points[i]);
    }

    // Incremental index maintenance: extend each touched cell's bounding
    // box and convex hull; publish a fresh index copy only if something
    // actually grew (points inside existing hulls publish nothing).
    for (size_t t = 0; t < touched.size(); ++t) {
      const size_t ci = touched[t];
      const GridCell& cur = (next_index != nullptr ? next_index->cells[ci]
                                                   : index_->cells[ci]);
      Box grown = cur.box;
      for (const Vec2& p : touched_pts[t]) grown.Extend(p);
      std::vector<Vec2> hull_pts = cur.bounding_poly.outer;
      hull_pts.insert(hull_pts.end(), touched_pts[t].begin(),
                      touched_pts[t].end());
      std::vector<Vec2> hull = ConvexHull(std::move(hull_pts));
      const bool box_changed = grown.min.x != cur.box.min.x ||
                               grown.min.y != cur.box.min.y ||
                               grown.max.x != cur.box.max.x ||
                               grown.max.y != cur.box.max.y;
      const bool hull_changed = hull != cur.bounding_poly.outer;
      const size_t new_bytes = cells_[ci].ids.size() * cells_[ci].row_bytes;
      if (box_changed || hull_changed || next_index != nullptr) {
        GridCell& out = mutable_index()->cells[ci];
        out.box = grown;
        out.bounding_poly.outer = std::move(hull);
        out.bytes = new_bytes;
      }
    }
    if (next_index != nullptr) PublishIndexLocked(std::move(next_index));

    stats_.epoch = epoch_;
    append_event.kind = MutationEvent::Kind::kAppend;
    append_event.uid = uid();
    append_event.dataset = name_;
    append_event.epoch = sealed;
    append_event.cells = touched;

    // Threshold-tripped merges, synchronously while the batch is hot. A
    // failed merge is non-fatal: deltas stay buffered and the next trip
    // retries.
    if (options_.merge_threshold > 0 && !options_.merge_dir.empty()) {
      for (size_t ci : touched) {
        Cell& c = cells_[ci];
        if (c.ids.size() - c.merged_rows < options_.merge_threshold) continue;
        Status st = MergeCellLocked(ci);
        if (st.ok()) {
          merged_any = true;
          merge_event.cells.push_back(ci);
        } else {
          ++stats_.merge_failures;
          MergeFailuresCounter()->Add(1);
        }
      }
    }
    if (merged_any) {
      merge_event.kind = MutationEvent::Kind::kMerge;
      merge_event.uid = uid();
      merge_event.dataset = name_;
      merge_event.epoch = sealed;
    }

    // Observer fires under the lock, before the new epoch can be pinned —
    // cache invalidation can never lag visibility.
    if (observer_) {
      observer_(append_event);
      if (merged_any) observer_(merge_event);
    }
  }

  AppendsCounter()->Add(1);
  RowsCounter()->Add(static_cast<int64_t>(points.size()));
  return sealed;
}

Status IngestSource::MergeCellLocked(size_t cell) {
  SPADE_TRACE_SPAN("ingest.merge");
  if (failpoint::AnyActive()) {
    Status fp = failpoint::Check("ingest.merge");
    if (!fp.ok()) return fp;
  }
  Cell& c = cells_[cell];
  if (c.delta_pts.empty()) return Status::OK();

  std::vector<Geometry> geoms;
  geoms.reserve(c.ids.size());
  if (c.merged_rows > 0) {
    // Re-read the already merged prefix; the new file supersedes it.
    auto file = MmapFile::Open(CellFilePath(cell));
    if (!file.ok()) return file.status();
    std::vector<GeomId> prev_ids;
    BlockReadInfo info;
    SPADE_RETURN_NOT_OK(DeserializeBlock(file.value().data(),
                                         file.value().size(), &prev_ids,
                                         &geoms, &info));
    if (geoms.size() < c.merged_rows) {
      return Status::IOError("merged block for cell " + std::to_string(cell) +
                             " truncated");
    }
    geoms.resize(c.merged_rows);
  }
  for (const Vec2& p : c.delta_pts) geoms.emplace_back(p);

  const std::string block = SerializeBlock(c.ids, geoms);
  const std::string path = CellFilePath(cell);
  const std::string tmp = path + ".tmp";
  SPADE_RETURN_NOT_OK(WriteFile(tmp, block.data(), block.size()));
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::IOError("rename " + tmp + ": " + ec.message());
  }

  c.merged_rows = c.ids.size();
  c.delta_pts.clear();
  c.delta_pts.shrink_to_fit();
  ++stats_.merges;
  MergesCounter()->Add(1);
  return Status::OK();
}

Status IngestSource::ForceMerge() {
  if (options_.merge_dir.empty()) {
    return Status::InvalidArgument("ingest source '" + name_ +
                                   "' has no merge directory");
  }
  MutationEvent event;
  Status first_failure = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t ci = 0; ci < cells_.size(); ++ci) {
      if (cells_[ci].delta_pts.empty()) continue;
      Status st = MergeCellLocked(ci);
      if (st.ok()) {
        event.cells.push_back(ci);
      } else {
        ++stats_.merge_failures;
        MergeFailuresCounter()->Add(1);
        if (first_failure.ok()) first_failure = std::move(st);
      }
    }
    if (!event.cells.empty() && observer_) {
      event.kind = MutationEvent::Kind::kMerge;
      event.uid = uid();
      event.dataset = name_;
      event.epoch = epoch_;
      observer_(event);
    }
  }
  return first_failure;
}

std::shared_ptr<CellSource> IngestSource::PinSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::make_shared<IngestSnapshot>(this, epoch_, num_rows_, index_);
}

void IngestSource::SetMutationObserver(
    std::function<void(const MutationEvent&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  observer_ = std::move(fn);
}

IngestStats IngestSource::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestStats out = stats_;
  out.epoch = epoch_;
  out.num_objects = num_rows_;
  out.num_cells = cells_.size();
  out.unmerged_rows = 0;
  out.merged_rows = 0;
  for (const Cell& c : cells_) {
    out.unmerged_rows += c.ids.size() - c.merged_rows;
    out.merged_rows += c.merged_rows;
  }
  return out;
}

void IngestSource::PublishIndexLocked(std::shared_ptr<GridIndex> next) {
  // Retire the old copy into the history instead of destroying it: the raw
  // source's index() hands out references whose lifetime callers cannot
  // see, so every published index lives as long as the source. Publishes
  // only happen when a hull/box grows or a cell appears, which tapers off
  // fast on stationary streams.
  index_history_.push_back(index_);
  index_ = std::move(next);
}

Result<std::shared_ptr<IngestSource>> MakeIngestSource(
    std::string name, const IngestOptions& options) {
  if (options.extent.Empty() || options.extent.Width() <= 0 ||
      options.extent.Height() <= 0) {
    return Status::InvalidArgument("ingest extent must be non-degenerate");
  }
  if (options.zoom < 0 || options.zoom > 12) {
    return Status::InvalidArgument("ingest zoom must be in [0, 12]");
  }
  if (!options.merge_dir.empty()) {
    std::error_code ec;
    fs::create_directories(options.merge_dir, ec);
    if (ec) {
      return Status::IOError("create_directories " + options.merge_dir + ": " +
                             ec.message());
    }
  }
  return std::make_shared<IngestSource>(std::move(name), options);
}

}  // namespace ingest
}  // namespace spade
