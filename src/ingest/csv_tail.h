// Bulk CSV tailing into an ingest source. A CsvTailer remembers a byte
// offset per tailed file, so each Tail() call appends only the lines
// written since the last one (the `tail -f` of ingest). Malformed rows
// count, report, and respect limits exactly like the offline
// LoadPointsCsv path: a non-numeric first line of the *file* is a header
// (skipped, uncounted), later bad lines increment skipped_rows, and a
// call whose batch exceeds max_skipped_rows fails with kInvalidArgument
// and appends nothing — the offset does not advance, so the call is
// atomic and retryable.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/cancel.h"
#include "common/status.h"
#include "ingest/ingest.h"
#include "storage/io.h"

namespace spade {
namespace ingest {

class CsvTailer {
 public:
  explicit CsvTailer(std::shared_ptr<IngestSource> source)
      : source_(std::move(source)) {}

  /// Append the complete lines of `path` written since the last Tail of
  /// that path, as ONE ingest batch (one epoch). A trailing line without
  /// a newline is assumed mid-write and left for the next call. Returns
  /// the number of rows appended (0 when nothing new). On any failure —
  /// skipped-row limit, extent violation, cancellation, failpoint — the
  /// offset stays put and nothing is appended.
  Result<size_t> Tail(const std::string& path,
                      const CsvLoadOptions& options = {},
                      CancelToken* cancel = nullptr);

  /// Forget the remembered offset of `path` (re-ingest from the start).
  void Reset(const std::string& path);

  IngestSource* source() const { return source_.get(); }

 private:
  std::shared_ptr<IngestSource> source_;
  std::mutex mu_;
  std::map<std::string, uint64_t> offsets_;
};

}  // namespace ingest
}  // namespace spade
