// Streaming ingest: the engine's first write path. An IngestSource is a
// mutable point CellSource that accepts appended batches online, routes
// them into per-grid-cell delta buffers, and merges each cell's deltas
// into a checksummed block-format-v2 file when the cell's unmerged-row
// count trips a threshold. The grid index is maintained incrementally
// (per-cell bounding box + convex hull extension, new cells appended at
// stable indices) — never rebuilt.
//
// Reads are snapshot consistent. Every append seals one *epoch*; a query
// pins an epoch via PinSnapshot() at admission and sees exactly the rows
// appended at or before it: frozen (merged) block prefixes plus the
// in-memory deltas sealed at or before the pinned epoch. Cached
// prepared-cell and batch results are keyed by cell_version(), which a
// snapshot reports as the epoch of the cell's newest visible row — so
// entries for several epochs coexist and an append can never cause a
// stale hit (see docs/ingest.md).
//
// Failpoints: ingest.append (fails the batch before it seals),
// ingest.merge (fails a merge before it writes — non-fatal: deltas stay
// buffered and the merge retries at the next threshold trip), plus the
// storage-layer io.write / io.read / block.deserialize sites which the
// merge write and merged-block reads pass through naturally.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/status.h"
#include "storage/dataset.h"

namespace spade {
namespace ingest {

/// \brief Creation-time knobs of an ingest source.
struct IngestOptions {
  /// Fixed spatial extent, declared up front (streams rarely know their
  /// bounds, but a grid does): appends outside it are rejected with
  /// kInvalidArgument and the whole batch is dropped atomically.
  Box extent;
  /// Fixed grid zoom: the grid is 2^zoom x 2^zoom over the extent. Cells
  /// over the device budget are still fine — the engine's sub-cell
  /// streaming (PlanCellPasses) bounds memory at query time.
  int zoom = 4;
  /// Unmerged rows per cell before a merge trips (0 = never merge).
  size_t merge_threshold = 4096;
  /// Directory for merged block files ("" = deltas stay in memory and
  /// merges are disabled, like an InMemorySource that grows).
  std::string merge_dir;
};

/// \brief One dataset mutation, delivered to the observer synchronously
/// (under the source mutex, before the new epoch is pinnable) so cache
/// invalidation can never lag visibility.
struct MutationEvent {
  enum class Kind { kAppend, kMerge };
  Kind kind = Kind::kAppend;
  uint64_t uid = 0;            ///< CellSource uid of the mutated source
  std::string dataset;         ///< source name
  uint64_t epoch = 0;          ///< epoch after the mutation
  std::vector<size_t> cells;   ///< touched cell indices
};

/// \brief Point-in-time accounting of an ingest source.
struct IngestStats {
  uint64_t epoch = 0;          ///< sealed append batches
  size_t num_objects = 0;      ///< total appended rows
  size_t num_cells = 0;        ///< non-empty grid cells
  size_t unmerged_rows = 0;    ///< rows still in delta buffers
  size_t merged_rows = 0;      ///< rows persisted in block files
  uint64_t merges = 0;         ///< completed merges
  uint64_t merge_failures = 0; ///< failed (retried-later) merges
  uint64_t rejected_batches = 0;  ///< appends refused (extent / parse)
};

/// \brief A mutable, append-only point dataset behind the CellSource
/// interface. Thread safe: appends, merges, snapshot pins and snapshot
/// reads may interleave freely from any threads.
class IngestSource : public CellSource {
 public:
  IngestSource(std::string name, const IngestOptions& options);

  // --- CellSource (reads the *latest* epoch; queries that need a stable
  // view should run against PinSnapshot() instead) -------------------------
  const std::string& name() const override { return name_; }
  const GridIndex& index() const override;
  size_t num_objects() const override;
  GeomType primary_type() const override { return GeomType::kPoint; }
  Result<std::shared_ptr<const CellData>> LoadCell(
      size_t cell, QueryStats* stats) override;
  uint64_t cell_version(size_t cell) const override;
  uint64_t snapshot_epoch() const override;
  bool CellMayContain(size_t cell,
                      const std::vector<bool>& wanted) const override;

  // --- the write path ------------------------------------------------------
  /// Append one batch of points, sealing one new epoch; returns the sealed
  /// epoch. All-or-nothing: a point outside the extent, a tripped cancel
  /// token, or an armed ingest.append failpoint rejects the whole batch
  /// and leaves every observable property unchanged. Ids are assigned
  /// densely in append order (row i of the stream is GeomId i).
  Result<uint64_t> Append(const std::vector<Vec2>& points,
                          CancelToken* cancel = nullptr);

  /// Merge every cell with unmerged deltas now, regardless of threshold.
  /// Returns the first merge failure (later cells are still attempted);
  /// failed cells keep their deltas and retry on the next trip.
  Status ForceMerge();

  /// Pin the current epoch: the returned source is an immutable view that
  /// sees exactly the rows sealed at or before it, shares this source's
  /// uid (cache identity), and stays valid for concurrent appends/merges.
  /// It must not outlive this IngestSource.
  std::shared_ptr<CellSource> PinSnapshot() const;

  /// Install the mutation observer (replaces any previous one). Called
  /// under the source mutex for every sealed append and completed merge;
  /// it must not call back into this source.
  void SetMutationObserver(std::function<void(const MutationEvent&)> fn);

  IngestStats GetStats() const;
  const IngestOptions& options() const { return options_; }

 private:
  friend class IngestSnapshot;

  /// One grid cell's rows, split into a merged (on-disk) prefix and an
  /// in-memory delta tail. Row order is append order, so epochs ascend
  /// and the rows visible at any epoch are a prefix.
  struct Cell {
    std::vector<uint64_t> epochs;  ///< per-row sealing epoch (ascending)
    std::vector<GeomId> ids;       ///< per-row global id (append order)
    std::vector<Vec2> delta_pts;   ///< points of rows [merged_rows, size)
    size_t merged_rows = 0;        ///< prefix persisted in the block file
    size_t row_bytes = 0;          ///< serialized size of one row (approx)
  };

  std::string CellFilePath(size_t cell) const;
  /// Visible row count of `cell` at `epoch` (upper_bound over epochs).
  size_t VisibleRows(const Cell& cell, uint64_t epoch) const;
  /// Copy the rows of `cell` visible at `epoch` into `out`; rows in the
  /// merged prefix are fetched from the block file (outside the lock).
  Result<std::shared_ptr<const CellData>> LoadCellAtEpoch(
      size_t cell, uint64_t epoch, QueryStats* stats) const;
  uint64_t CellVersionAtEpoch(size_t cell, uint64_t epoch) const;
  bool CellVisibleAtEpoch(size_t cell, uint64_t epoch) const;
  /// Merge one cell's full row list into its block file. Caller holds mu_.
  Status MergeCellLocked(size_t cell);
  /// Publish a new GridIndex copy. Caller holds mu_.
  void PublishIndexLocked(std::shared_ptr<GridIndex> next);

  const std::string name_;
  const IngestOptions options_;
  const double cell_w_, cell_h_;  ///< grid cell size at the fixed zoom

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  size_t num_rows_ = 0;
  std::vector<Cell> cells_;                  ///< parallel to index cells
  std::map<std::pair<int, int>, size_t> cell_by_coord_;
  /// Copy-on-write published index: snapshots pin the shared_ptr; a new
  /// copy is published only when a box/hull grows or a cell appears.
  /// Retired copies are retained in index_history_ so the reference the
  /// raw source's index() returns can never dangle.
  std::shared_ptr<const GridIndex> index_;
  std::vector<std::shared_ptr<const GridIndex>> index_history_;
  std::function<void(const MutationEvent&)> observer_;
  IngestStats stats_;
};

/// Create an ingest source or fail (bad extent / zoom, unwritable dir).
Result<std::shared_ptr<IngestSource>> MakeIngestSource(
    std::string name, const IngestOptions& options);

}  // namespace ingest
}  // namespace spade
