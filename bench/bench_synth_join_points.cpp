// Fig. 12 — synthetic point-polygon joins (uniform vs gaussian points,
// parcel constraints):
//   (left)  vary the number of parcels with a fixed point dataset
//   (right) vary the point-set size with 5000 parcels
#include "bench_common.h"
#include "datagen/spider.h"

namespace spade {
namespace {

double JoinTime(SpadeEngine* engine, const SpatialDataset& parcels,
                const SpatialDataset& points) {
  auto csrc = MakeInMemorySource("parcels", parcels, engine->config());
  auto psrc = MakeInMemorySource("points", points, engine->config());
  (void)engine->WarmIndexes(*csrc, true);
  (void)engine->WarmIndexes(*psrc, false);
  return bench::TimeIt([&] { (void)engine->SpatialJoin(*csrc, *psrc); });
}

}  // namespace
}  // namespace spade

int main() {
  using namespace spade;
  SpadeEngine engine(bench::BenchConfig());
  const size_t base_n = bench::Scaled(400000);

  bench::PrintHeader(
      "Fig 12(left): point-polygon join, varying parcels (points = " +
      std::to_string(base_n) + ")");
  bench::PrintRow({"parcels", "uniform_s", "gauss_s"}, {10, 12, 12});
  {
    const SpatialDataset uni = GenerateUniformPoints(base_n, 9);
    const SpatialDataset gau = GenerateGaussianPoints(base_n, 10);
    for (const size_t parcels : {1000u, 2500u, 5000u, 7500u, 10000u}) {
      const SpatialDataset par = GenerateParcels(parcels, 11);
      const double us = JoinTime(&engine, par, uni);
      const double gs = JoinTime(&engine, par, gau);
      bench::PrintRow(
          {std::to_string(parcels), bench::Fmt(us), bench::Fmt(gs)},
          {10, 12, 12});
    }
  }

  bench::PrintHeader(
      "Fig 12(right): point-polygon join, varying points (5000 parcels)");
  bench::PrintRow({"points", "uniform_s", "gauss_s"}, {10, 12, 12});
  const SpatialDataset par = GenerateParcels(5000, 12);
  for (const size_t n : {bench::Scaled(200000), bench::Scaled(400000),
                         bench::Scaled(600000), bench::Scaled(800000),
                         bench::Scaled(1000000)}) {
    const SpatialDataset uni = GenerateUniformPoints(n, 13);
    const SpatialDataset gau = GenerateGaussianPoints(n, 14);
    const double us = JoinTime(&engine, par, uni);
    const double gs = JoinTime(&engine, par, gau);
    bench::PrintRow({std::to_string(n), bench::Fmt(us), bench::Fmt(gs)},
                    {10, 12, 12});
  }
  return 0;
}
