// Profiling overhead: the same range-selection workload run with and
// without a QueryProfile attached (ProfileScope), plus the profiles-off
// tracer-enabled case for reference. The acceptance bar is that the
// *disabled* path (no profile attached — the default CLI/service hot
// path when --no-profiles is set) stays within noise of the PR 3
// baseline: a detached profile costs one thread-local pointer load per
// span site.
//
//   $ ./build/bench/bench_explain --json=BENCH_explain.json
#include <string>
#include <vector>

#include "bench_common.h"
#include "datagen/spider.h"
#include "obs/profile.h"

namespace spade {
namespace {

/// Evenly spaced query windows covering ~4% of the unit square each.
std::vector<Box> QueryWindows(size_t n) {
  std::vector<Box> windows;
  for (size_t i = 0; i < n; ++i) {
    const double x = 0.05 + 0.8 * (static_cast<double>(i % 7) / 7.0);
    const double y = 0.05 + 0.8 * (static_cast<double>(i % 5) / 5.0);
    windows.push_back(Box{{x, y}, {x + 0.2, y + 0.2}});
  }
  return windows;
}

void RunVariant(const std::string& key, bool attach_profile,
                SpadeEngine& engine, CellSource& src,
                const std::vector<Box>& windows) {
  std::vector<double> latencies;
  int64_t fragments = 0;
  double total = 0;
  for (const Box& window : windows) {
    obs::QueryProfile profile;
    const double s = bench::TimeIt([&] {
      if (attach_profile) {
        obs::ProfileScope attach(&profile);
        auto r = engine.RangeSelection(src, window);
        if (r.ok()) fragments += r.value().stats.fragments;
      } else {
        auto r = engine.RangeSelection(src, window);
        if (r.ok()) fragments += r.value().stats.fragments;
      }
    });
    latencies.push_back(s);
    total += s;
  }
  bench::Records().push_back(
      bench::MakeRecord(key, latencies, total, fragments));
  std::printf("  %-24s p50=%ss p95=%ss mean=%ss\n", key.c_str(),
              bench::Fmt(bench::PercentileOf(latencies, 0.50), 6).c_str(),
              bench::Fmt(bench::PercentileOf(latencies, 0.95), 6).c_str(),
              bench::Fmt(total / latencies.size(), 6).c_str());
}

}  // namespace
}  // namespace spade

int main(int argc, char** argv) {
  using namespace spade;
  bench::ParseArgs(argc, argv);

  const size_t n = bench::Scaled(500000);
  bench::PrintHeader("EXPLAIN ANALYZE overhead: range selection over " +
                     std::to_string(n) + " uniform points");
  SpadeEngine engine(bench::BenchConfig());
  SpatialDataset data = GenerateUniformPoints(n, /*seed=*/42);
  auto src = MakeInMemorySource(data.name, data, engine.config());
  (void)engine.WarmIndexes(*src, /*need_layers=*/false);

  const auto windows = QueryWindows(64);

  // Warm the cell cache so both variants measure the same steady state.
  for (size_t i = 0; i < 8; ++i) {
    (void)engine.RangeSelection(*src, windows[i % windows.size()]);
  }

  RunVariant("explain_profile_off", /*attach_profile=*/false, engine, *src,
             windows);
  RunVariant("explain_profile_on", /*attach_profile=*/true, engine, *src,
             windows);
  // Interleaved second pass of the disabled path guards against drift
  // (cache warming, frequency scaling) being misread as profile cost.
  RunVariant("explain_profile_off_rerun", /*attach_profile=*/false, engine,
             *src, windows);

  bench::WriteJsonIfRequested();
  return 0;
}
