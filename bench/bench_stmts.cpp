// Telemetry-overhead benchmark: the same closed-loop service workload as
// bench_service, run with workload telemetry (statement store + flight
// recorder tail sampling) fully enabled and fully disabled. The delta is
// the always-on cost of per-query fingerprinting, statement aggregation,
// and span capture for tail sampling — it must sit within run-to-run noise
// for the enabled-by-default posture to be honest.
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "datagen/realdata.h"
#include "datagen/spider.h"
#include "engine/tuning.h"
#include "obs/recorder.h"
#include "obs/statements.h"
#include "service/service.h"

using namespace spade;
using namespace spade::bench;

namespace {

struct RunResult {
  double seconds = 0;
  int64_t completed = 0;
  ServiceStats stats;
};

RunResult RunWorkload(bool telemetry, int clients, int rounds) {
  // A fresh store/recorder per run: the service constructor applies the
  // per-config global state, and cross-run leftovers would skew nothing
  // but the honest thing is an empty table either way.
  obs::StatementStore::Global().Clear();
  obs::FlightRecorder::Global().Clear();

  ServiceConfig sc;
  sc.workers = 4;
  sc.device_slots = 2;
  sc.queue_capacity = 256;
  if (!telemetry) {
    sc.statements_capacity = 0;  // disables fingerprinting + aggregation
    sc.recorder_bytes = 0;       // disables span capture + tail sampling
  }
  SpadeService service(BenchConfig(), sc);

  SpadeConfig cfg = BenchConfig();
  (void)service.RegisterSource(
      "pts", MakeTunedInMemorySource(
                 "pts", GenerateUniformPoints(Scaled(200000), 11), cfg));
  (void)service.RegisterSource(
      "hoods",
      MakeTunedInMemorySource("hoods", NeighborhoodLikePolygons(12), cfg));

  std::vector<Request> mix;
  {
    Request r;
    r.kind = RequestKind::kRange;
    r.dataset = "pts";
    r.range = Box(0.2, 0.2, 0.7, 0.7);
    mix.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kKnn;
    r.dataset = "pts";
    r.point = {0.5, 0.5};
    r.k = 10;
    mix.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kJoin;
    r.dataset = "hoods";
    r.dataset2 = "pts";
    mix.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kDistance;
    r.dataset = "pts";
    r.point = {0.4, 0.6};
    r.radius = 0.1;
    mix.push_back(r);
  }
  for (const Request& req : mix) (void)service.Execute(req);

  std::atomic<int64_t> completed{0};
  RunResult out;
  out.seconds = TimeIt([&] {
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < rounds; ++round) {
          Response r = service.Execute(mix[(t + round) % mix.size()]);
          if (r.status.ok()) {
            completed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  });
  out.completed = completed.load();
  out.stats = service.Snapshot();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  const int clients = 8;
  const int rounds = 6;
  const int reps = 3;
  PrintHeader("Workload telemetry overhead: closed-loop clients=" +
              std::to_string(clients) + ", rounds=" + std::to_string(rounds) +
              ", workers=4, slots=2");
  const std::vector<int> widths = {10, 5, 10, 11, 11, 11, 13, 8};
  PrintRow({"telemetry", "rep", "req/s", "p50(s)", "p95(s)", "p99(s)",
            "fingerprints", "traces"},
           widths);

  // Interleave the configurations so machine drift (thermal, page cache)
  // lands on both sides evenly; report every rep, keep the best per side
  // for the headline comparison (closed-loop best-of is the standard way
  // to compare fixed workloads).
  double best_on = 0, best_off = 0;
  for (int rep = 0; rep < reps; ++rep) {
    for (const bool telemetry : {false, true}) {
      RunResult r = RunWorkload(telemetry, clients, rounds);
      const double rps = r.seconds > 0 ? r.completed / r.seconds : 0;
      if (telemetry) {
        if (rps > best_on) best_on = rps;
      } else {
        if (rps > best_off) best_off = rps;
      }
      PrintRow({telemetry ? "on" : "off", FmtCount(rep), Fmt(rps, 1),
                Fmt(r.stats.latency_p50), Fmt(r.stats.latency_p95),
                Fmt(r.stats.latency_p99),
                FmtCount(obs::StatementStore::Global().size()),
                FmtCount(obs::FlightRecorder::Global().size())},
               widths);
      BenchRecord rec;
      rec.name = std::string("stmts_") + (telemetry ? "on" : "off") + "_rep" +
                 std::to_string(rep);
      rec.samples = r.completed;
      rec.p50 = r.stats.latency_p50;
      rec.p95 = r.stats.latency_p95;
      rec.p99 = r.stats.latency_p99;
      rec.mean = r.stats.latency_mean;
      rec.throughput = rps;
      Records().push_back(rec);
    }
  }

  const double overhead =
      best_off > 0 ? (best_off - best_on) / best_off * 100.0 : 0;
  std::printf(
      "\nBest-of-%d throughput: telemetry off %.1f req/s, on %.1f req/s "
      "(delta %+.1f%%).\nExpected shape: the delta stays within run-to-run "
      "noise — fingerprinting is\none FNV pass over the parsed request and "
      "span capture copies PODs the\nprofiler already walks.\n",
      reps, best_off, best_on, overhead);
  WriteJsonIfRequested();
  return 0;
}
