// Table 2 — point-polygon joins:
//   taxi x neighborhoods, taxi x census, tweets x counties, tweets x zipcodes
// Systems: SPADE, GeoSpark-like cluster, S2-like library.
#include "baselines/cluster.h"
#include "baselines/s2like.h"
#include "bench_common.h"
#include "datagen/realdata.h"

namespace spade {
namespace {

void RunJoin(const std::string& name, const SpatialDataset& points,
             const SpatialDataset& polys) {
  SpadeEngine engine(bench::BenchConfig());
  auto psrc = MakeInMemorySource(points.name, points, engine.config());
  auto csrc = MakeInMemorySource(polys.name, polys, engine.config());
  (void)engine.WarmIndexes(*psrc, false);
  (void)engine.WarmIndexes(*csrc, true);

  size_t join_size = 0;
  QueryStats stats;
  const double spade_s = bench::TimeIt([&] {
    auto r = engine.SpatialJoin(*csrc, *psrc);
    if (r.ok()) {
      join_size = r.value().pairs.size();
      stats = r.value().stats;
    }
  });

  ClusterConfig ccfg;
  const ClusterDataset cpoints(&points, ccfg);
  const ClusterDataset cpolys(&polys, ccfg);
  const ClusterEngine cluster(ccfg);
  const double cluster_s =
      bench::TimeIt([&] { cluster.JoinPolyPoint(cpolys, cpoints); });

  std::vector<Vec2> pts;
  pts.reserve(points.size());
  for (const auto& g : points.geoms) pts.push_back(g.point());
  const S2LikePointIndex s2p(pts);
  const S2LikeShapeIndex s2s(&polys.geoms);
  const double s2_s = bench::TimeIt([&] { s2s.JoinPoints(s2p); });

  bench::PrintRow({name, std::to_string(join_size), bench::Fmt(spade_s),
                   bench::Fmt(cluster_s), bench::Fmt(s2_s)},
                  {34, 12, 10, 10, 10});
  bench::PrintBreakdown(stats);
}

}  // namespace
}  // namespace spade

int main() {
  using namespace spade;
  bench::PrintHeader("Table 2: point-polygon joins (seconds)");
  bench::PrintRow({"join", "|result|", "SPADE", "GeoSpark", "S2"},
                  {34, 12, 10, 10, 10});

  const size_t taxi_n = bench::Scaled(800000);
  const size_t tweet_n = bench::Scaled(800000);
  const SpatialDataset taxi = TaxiLikePoints(taxi_n, 11);
  const SpatialDataset tweets = TweetLikePoints(tweet_n, 12);

  RunJoin("taxi x neighborhoods", taxi, NeighborhoodLikePolygons(13));
  RunJoin("taxi x census", taxi, CensusLikePolygons(14));
  RunJoin("tweets x counties", tweets, CountyLikePolygons(15, 24, 24));
  RunJoin("tweets x zipcodes", tweets, ZipcodeLikePolygons(16, 64, 64));
  return 0;
}
