// Fig. 10 — synthetic point selections (uniform vs gaussian):
//   (left)  vary the query polygon extent 0.1 .. 0.5 on a fixed dataset
//   (right) vary the input size with the extent fixed at 0.3
//   (bottom) the selectivity of each query
// The query polygon is a star-shaped constraint centered on the unit
// square, scaled like the paper scales an NYC neighborhood polygon.
#include "bench_common.h"
#include "datagen/spider.h"
#include "test_polygon.h"

int main() {
  using namespace spade;
  SpadeEngine engine(bench::BenchConfig());
  const size_t base_n = bench::Scaled(400000);

  bench::PrintHeader(
      "Fig 10(left+bottom): point selection, varying polygon extent (n = " +
      std::to_string(base_n) + ")");
  bench::PrintRow({"extent", "uniform_s", "gauss_s", "uniform_sel",
                   "gauss_sel"},
                  {10, 12, 12, 14, 14});
  {
    const SpatialDataset uni = GenerateUniformPoints(base_n, 1);
    const SpatialDataset gau = GenerateGaussianPoints(base_n, 2);
    auto usrc = MakeInMemorySource("u", uni, engine.config());
    auto gsrc = MakeInMemorySource("g", gau, engine.config());
    (void)engine.WarmIndexes(*usrc, false);
    (void)engine.WarmIndexes(*gsrc, false);
    for (const double extent : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      const MultiPolygon poly = bench::QueryStar(extent);
      size_t ures = 0, gres = 0;
      const double us = bench::TimeIt([&] {
        auto r = engine.SpatialSelection(*usrc, poly);
        if (r.ok()) ures = r.value().ids.size();
      });
      const double gs = bench::TimeIt([&] {
        auto r = engine.SpatialSelection(*gsrc, poly);
        if (r.ok()) gres = r.value().ids.size();
      });
      bench::PrintRow({bench::Fmt(extent, 1), bench::Fmt(us), bench::Fmt(gs),
                       bench::Fmt(100.0 * ures / base_n, 2) + "%",
                       bench::Fmt(100.0 * gres / base_n, 2) + "%"},
                      {10, 12, 12, 14, 14});
    }
  }

  bench::PrintHeader(
      "Fig 10(right): point selection, varying input size (extent = 0.3)");
  bench::PrintRow({"points", "uniform_s", "gauss_s"}, {10, 12, 12});
  const MultiPolygon poly = bench::QueryStar(0.3);
  for (const size_t n : {bench::Scaled(200000), bench::Scaled(400000),
                         bench::Scaled(600000), bench::Scaled(800000),
                         bench::Scaled(1000000)}) {
    const SpatialDataset uni = GenerateUniformPoints(n, 3);
    const SpatialDataset gau = GenerateGaussianPoints(n, 4);
    auto usrc = MakeInMemorySource("u", uni, engine.config());
    auto gsrc = MakeInMemorySource("g", gau, engine.config());
    (void)engine.WarmIndexes(*usrc, false);
    (void)engine.WarmIndexes(*gsrc, false);
    const double us =
        bench::TimeIt([&] { (void)engine.SpatialSelection(*usrc, poly); });
    const double gs =
        bench::TimeIt([&] { (void)engine.SpatialSelection(*gsrc, poly); });
    bench::PrintRow({std::to_string(n), bench::Fmt(us), bench::Fmt(gs)},
                    {10, 12, 12});
  }
  return 0;
}
