// Fig. 7 — distance-based joins over taxi-like data (meters, EPSG:3857):
//   (a) vary the number of random probe points (100 .. 100K), r = 20m
//   (b) vary the query distance (5m .. 100m) with 100K probes
// Systems: SPADE, GeoSpark-like cluster, S2-like library. Coordinates are
// pre-projected for the baselines, as the paper did for GeoSpark.
#include <random>

#include "baselines/cluster.h"
#include "baselines/s2like.h"
#include "bench_common.h"
#include "datagen/realdata.h"
#include "geom/projection.h"

namespace spade {
namespace {

std::vector<Vec2> RandomProbes(size_t n, const Box& extent, uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> ux(extent.min.x, extent.max.x);
  std::uniform_real_distribution<double> uy(extent.min.y, extent.max.y);
  std::vector<Vec2> probes(n);
  for (auto& p : probes) p = {ux(gen), uy(gen)};
  return probes;
}

struct Workload {
  SpatialDataset taxi;                  // lon/lat for SPADE
  SpatialDataset taxi_mercator;         // pre-projected for baselines
  std::unique_ptr<InMemorySource> src;  // SPADE cell source
  std::unique_ptr<S2LikePointIndex> s2;
  std::unique_ptr<ClusterDataset> cluster_data;
  ClusterConfig ccfg;
};

Workload MakeWorkload(size_t n, SpadeEngine* engine) {
  Workload w;
  w.taxi = TaxiLikePoints(n, 41);
  w.taxi_mercator.name = "taxi_m";
  std::vector<Vec2> merc;
  merc.reserve(n);
  for (const auto& g : w.taxi.geoms) {
    const Vec2 m = LonLatToWebMercator(g.point());
    w.taxi_mercator.geoms.emplace_back(m);
    merc.push_back(m);
  }
  w.src = MakeInMemorySource("taxi", w.taxi, engine->config());
  (void)engine->WarmIndexes(*w.src, false);
  w.s2 = std::make_unique<S2LikePointIndex>(merc);
  w.cluster_data = std::make_unique<ClusterDataset>(&w.taxi_mercator, w.ccfg);
  return w;
}

void RunRow(SpadeEngine* engine, Workload* w, size_t num_probes, double r) {
  const auto probes_ll = RandomProbes(num_probes, NycExtent(), 77);
  std::vector<Vec2> probes_m(probes_ll.size());
  for (size_t i = 0; i < probes_ll.size(); ++i) {
    probes_m[i] = LonLatToWebMercator(probes_ll[i]);
  }

  // SPADE: probes as a dataset, type-1 distance join in mercator space.
  SpatialDataset probe_ds;
  probe_ds.name = "probes";
  for (const auto& p : probes_ll) probe_ds.geoms.emplace_back(p);
  auto probe_src = MakeInMemorySource("probes", probe_ds, engine->config());
  QueryOptions opts;
  opts.mercator = true;
  size_t result = 0;
  const double spade_s = bench::TimeIt([&] {
    auto res = engine->DistanceJoin(*probe_src, *w->src, r, opts);
    if (res.ok()) result = res.value().pairs.size();
  });

  const ClusterEngine cluster(w->ccfg);
  const double cluster_s = bench::TimeIt(
      [&] { cluster.DistanceJoinPoints(probes_m, *w->cluster_data, r); });

  const double s2_s = bench::TimeIt([&] {
    size_t total = 0;
    for (const auto& p : probes_m) total += w->s2->WithinDistance(p, r).size();
    (void)total;
  });

  bench::PrintRow({std::to_string(num_probes), bench::Fmt(r, 0),
                   std::to_string(result), bench::Fmt(spade_s),
                   bench::Fmt(cluster_s), bench::Fmt(s2_s)},
                  {10, 8, 12, 10, 10, 10});
}

}  // namespace
}  // namespace spade

int main() {
  using namespace spade;
  SpadeEngine engine(bench::BenchConfig());
  const size_t n = bench::Scaled(800000);
  Workload w = MakeWorkload(n, &engine);

  bench::PrintHeader("Fig 7(a): distance join, varying #points, r = 20m (" +
                     std::to_string(n) + " taxi-like points)");
  bench::PrintRow({"probes", "r(m)", "|result|", "SPADE", "GeoSpark", "S2"},
                  {10, 8, 12, 10, 10, 10});
  for (const size_t probes : {100u, 1000u, 10000u, 100000u}) {
    RunRow(&engine, &w, probes, 20.0);
  }

  bench::PrintHeader("Fig 7(b): distance join, 100K probes, varying r");
  bench::PrintRow({"probes", "r(m)", "|result|", "SPADE", "GeoSpark", "S2"},
                  {10, 8, 12, 10, 10, 10});
  for (const double r : {5.0, 20.0, 50.0, 100.0}) {
    RunRow(&engine, &w, 100000, r);
  }
  return 0;
}
