// Table 3 — polygon-polygon joins:
//   neighborhoods x census, zipcodes x counties, buildings x counties,
//   buildings x zipcodes, buildings x countries
// Systems: SPADE vs the GeoSpark-like cluster.
#include "baselines/cluster.h"
#include "bench_common.h"
#include "datagen/realdata.h"

namespace spade {
namespace {

void RunJoin(const std::string& name, const SpatialDataset& a,
             const SpatialDataset& b) {
  SpadeEngine engine(bench::BenchConfig());
  auto asrc = MakeInMemorySource(a.name, a, engine.config());
  auto bsrc = MakeInMemorySource(b.name, b, engine.config());
  (void)engine.WarmIndexes(*asrc, true);
  (void)engine.WarmIndexes(*bsrc, false);

  size_t join_size = 0;
  QueryStats stats;
  const double spade_s = bench::TimeIt([&] {
    auto r = engine.SpatialJoin(*asrc, *bsrc);
    if (r.ok()) {
      join_size = r.value().pairs.size();
      stats = r.value().stats;
    }
  });

  ClusterConfig ccfg;
  const ClusterDataset ca(&a, ccfg);
  const ClusterDataset cb(&b, ccfg);
  const ClusterEngine cluster(ccfg);
  const double cluster_s = bench::TimeIt([&] { cluster.JoinPolyPoly(ca, cb); });

  bench::PrintRow({name, std::to_string(join_size), bench::Fmt(spade_s),
                   bench::Fmt(cluster_s)},
                  {34, 12, 10, 10});
  bench::PrintBreakdown(stats);
}

}  // namespace
}  // namespace spade

int main() {
  using namespace spade;
  bench::PrintHeader("Table 3: polygon-polygon joins (seconds)");
  bench::PrintRow({"join", "|result|", "SPADE", "GeoSpark"}, {34, 12, 10, 10});

  const size_t building_n = bench::Scaled(40000);
  const SpatialDataset hoods = NeighborhoodLikePolygons(21);
  const SpatialDataset census = CensusLikePolygons(22);
  const SpatialDataset counties = CountyLikePolygons(23, 24, 24);
  const SpatialDataset zips = ZipcodeLikePolygons(24, 64, 64);
  const SpatialDataset buildings = BuildingLikePolygons(building_n, 25);
  const SpatialDataset countries = CountryLikePolygons(26, 10, 8);

  RunJoin("neighborhoods x census", hoods, census);
  RunJoin("zipcodes x counties", zips, counties);
  RunJoin("buildings x counties", buildings, counties);
  RunJoin("buildings x zipcodes", buildings, zips);
  RunJoin("buildings x countries", buildings, countries);
  return 0;
}
