// Fig. 6 — scaling the tweets x zipcodes join with input size. The paper
// observed GeoSpark's slope increasing once the point count outgrows
// executor memory (past ~1B points on their cluster); the cluster baseline
// reproduces the effect via its node-memory model at this scale, while
// SPADE scales smoothly (its out-of-core execution always streams cells).
#include "baselines/cluster.h"
#include "bench_common.h"
#include "datagen/realdata.h"

int main() {
  using namespace spade;
  bench::PrintHeader(
      "Fig 6: tweets x zipcodes join, scaling with input size (seconds)");
  bench::PrintRow({"points", "SPADE", "GeoSpark", "GeoSpark us/pt"},
                  {12, 10, 10, 16});

  const SpatialDataset zips = ZipcodeLikePolygons(31, 48, 48);
  ClusterConfig ccfg;
  // Executor memory sized so larger subsets spill (the Fig. 6 knee).
  ccfg.node_memory_budget = 96 << 10;
  const ClusterEngine cluster(ccfg);

  for (const size_t n :
       {bench::Scaled(200000), bench::Scaled(400000), bench::Scaled(600000),
        bench::Scaled(800000), bench::Scaled(1000000)}) {
    const SpatialDataset tweets = TweetLikePoints(n, 32);

    SpadeEngine engine(bench::BenchConfig());
    auto psrc = MakeInMemorySource("tweets", tweets, engine.config());
    auto zsrc = MakeInMemorySource("zips", zips, engine.config());
    (void)engine.WarmIndexes(*psrc, false);
    (void)engine.WarmIndexes(*zsrc, true);
    const double spade_s =
        bench::TimeIt([&] { (void)engine.SpatialJoin(*zsrc, *psrc); });

    const ClusterDataset cpoints(&tweets, ccfg);
    const ClusterDataset czips(&zips, ccfg);
    const double cluster_s =
        bench::TimeIt([&] { cluster.JoinPolyPoint(czips, cpoints); });

    bench::PrintRow({std::to_string(n), bench::Fmt(spade_s),
                     bench::Fmt(cluster_s),
                     bench::Fmt(cluster_s / n * 1e6, 4)},
                    {12, 10, 10, 16});
  }
  return 0;
}
