// Tables 1 & 4 — dataset inventories. Prints the analog datasets with
// their object counts, vertex counts, and byte sizes, mirroring the
// columns of the paper's Table 1, and the synthetic matrix of Table 4.
#include "bench_common.h"
#include "datagen/realdata.h"
#include "datagen/spider.h"

namespace spade {
namespace {

void Describe(const SpatialDataset& ds, const std::string& kind,
              const std::string& extent) {
  size_t verts = 0;
  for (const auto& g : ds.geoms) verts += g.NumVertices();
  bench::PrintRow(
      {ds.name, kind, extent, std::to_string(ds.size()),
       std::to_string(verts),
       bench::Fmt(ds.TotalBytes() / (1024.0 * 1024.0), 1) + " MB"},
      {26, 10, 8, 12, 12, 12});
}

}  // namespace
}  // namespace spade

int main() {
  using namespace spade;
  bench::PrintHeader(
      "Table 1 analogs: real-shaped datasets (scaled; see DESIGN.md)");
  bench::PrintRow({"name", "type", "extent", "objects", "points", "size"},
                  {26, 10, 8, 12, 12, 12});
  Describe(TaxiLikePoints(bench::Scaled(1000000), 1), "points", "NYC");
  Describe(TweetLikePoints(bench::Scaled(1000000), 2), "points", "USA");
  Describe(NeighborhoodLikePolygons(3), "polygons", "NYC");
  Describe(CensusLikePolygons(4), "polygons", "NYC");
  Describe(CountyLikePolygons(5, 24, 24), "polygons", "USA");
  Describe(ZipcodeLikePolygons(6, 64, 64), "polygons", "USA");
  Describe(BuildingLikePolygons(bench::Scaled(60000), 7), "polygons", "World");
  Describe(CountryLikePolygons(8, 10, 8), "polygons", "World");

  bench::PrintHeader("Table 4 analogs: synthetic datasets (unit square)");
  bench::PrintRow({"name", "type", "extent", "objects", "points", "size"},
                  {26, 10, 8, 12, 12, 12});
  for (const size_t n : {bench::Scaled(400000), bench::Scaled(800000)}) {
    Describe(GenerateUniformPoints(n, 9), "points", "unit");
    Describe(GenerateGaussianPoints(n, 10), "points", "unit");
  }
  for (const size_t n : {bench::Scaled(100000), bench::Scaled(200000)}) {
    Describe(GenerateUniformBoxes(n, 11), "boxes", "unit");
    Describe(GenerateGaussianBoxes(n, 12), "boxes", "unit");
  }
  Describe(GenerateParcels(5000, 13), "parcels", "unit");
  return 0;
}
