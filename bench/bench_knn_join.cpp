// Fig. 9 — kNN joins over taxi-like points:
//   (a) vary k with a fixed probe set
//   (b) vary the probe-set size with k = 10
// Systems: SPADE vs S2-like (GeoSpark does not support kNN joins, as the
// paper notes).
#include <random>

#include "baselines/s2like.h"
#include "bench_common.h"
#include "datagen/realdata.h"
#include "geom/projection.h"

namespace spade {
namespace {

std::vector<Vec2> RandomProbes(size_t n, uint64_t seed) {
  const Box ext = NycExtent();
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> ux(ext.min.x, ext.max.x);
  std::uniform_real_distribution<double> uy(ext.min.y, ext.max.y);
  std::vector<Vec2> probes(n);
  for (auto& p : probes) p = {ux(gen), uy(gen)};
  return probes;
}

}  // namespace
}  // namespace spade

int main() {
  using namespace spade;
  const size_t n = bench::Scaled(500000);

  SpadeEngine engine(bench::BenchConfig());
  const SpatialDataset taxi = TaxiLikePoints(n, 61);
  auto src = MakeInMemorySource("taxi", taxi, engine.config());
  (void)engine.WarmIndexes(*src, false);

  std::vector<Vec2> merc;
  merc.reserve(n);
  for (const auto& g : taxi.geoms) merc.push_back(LonLatToWebMercator(g.point()));
  const S2LikePointIndex s2(merc);

  QueryOptions opts;
  opts.mercator = true;

  bench::PrintHeader("Fig 9(a): kNN join, varying k (probes = " +
                     std::to_string(bench::Scaled(50000)) + ", " +
                     std::to_string(n) + " points)");
  bench::PrintRow({"k", "SPADE", "S2"}, {8, 12, 12});
  const auto probes_a = RandomProbes(bench::Scaled(50000), 7);
  for (const size_t k : {1u, 10u, 30u, 50u}) {
    const double spade_s =
        bench::TimeIt([&] { (void)engine.KnnJoin(probes_a, *src, k, opts); });
    const double s2_s = bench::TimeIt([&] {
      for (const auto& p : probes_a) s2.KNearest(LonLatToWebMercator(p), k);
    });
    bench::PrintRow({std::to_string(k), bench::Fmt(spade_s), bench::Fmt(s2_s)},
                    {8, 12, 12});
  }

  bench::PrintHeader("Fig 9(b): kNN join, varying probe count (k = 10)");
  bench::PrintRow({"probes", "SPADE", "S2"}, {10, 12, 12});
  for (const size_t m : {bench::Scaled(100), bench::Scaled(1000),
                         bench::Scaled(10000), bench::Scaled(50000)}) {
    const auto probes = RandomProbes(m, 8);
    const double spade_s =
        bench::TimeIt([&] { (void)engine.KnnJoin(probes, *src, 10, opts); });
    const double s2_s = bench::TimeIt([&] {
      for (const auto& p : probes) s2.KNearest(LonLatToWebMercator(p), 10);
    });
    bench::PrintRow({std::to_string(m), bench::Fmt(spade_s), bench::Fmt(s2_s)},
                    {10, 12, 12});
  }
  return 0;
}
