// The synthetic-workload query polygon (Section 6.6): a fixed star-shaped
// polygon (standing in for the NYC neighborhood boundary the paper scales)
// centered on the unit square, scaled so its bounding box has the given
// width/height "extent".
#pragma once

#include <cmath>

#include "geom/geometry.h"

namespace spade::bench {

inline MultiPolygon QueryStar(double extent) {
  // A 16-vertex star with alternating radii — non-convex, fixed shape.
  Polygon p;
  const int verts = 16;
  for (int i = 0; i < verts; ++i) {
    const double angle = 2.0 * M_PI * i / verts;
    const double radius = (i % 2 == 0) ? 0.5 : 0.28;
    p.outer.push_back({0.5 + radius * extent * std::cos(angle),
                       0.5 + radius * extent * std::sin(angle)});
  }
  MultiPolygon mp;
  mp.parts.push_back(std::move(p));
  return mp;
}

}  // namespace spade::bench
