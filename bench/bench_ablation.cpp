// Ablations of SPADE's design choices (DESIGN.md):
//   1. Layer-index join vs forced naive loop-of-selects (Section 5.3's two
//      strategies, normally arbitrated by the optimizer).
//   2. Canvas resolution sweep: the accuracy/occupancy trade-off — lower
//      resolution means more boundary-bucket exact tests, higher means
//      larger textures and rasterization cost.
//   3. Map implementation: 1-pass (pre-sized canvas + scan) vs forced
//      2-pass (count then fill).
//   4. Grid cell size (device-memory budget): fewer big cells vs many
//      small cells, the Section 6.1 tuning rule.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "datagen/spider.h"
#include "test_polygon.h"

namespace spade {
namespace {

// Expose the two join strategies by biasing the optimizer: a huge
// node-transfer estimate is simulated by configuring extreme budgets.
double JoinWithResolution(int resolution, size_t map_budget,
                          const SpatialDataset& parcels,
                          const SpatialDataset& points, QueryStats* stats) {
  SpadeConfig cfg = bench::BenchConfig();
  cfg.canvas_resolution = resolution;
  cfg.max_map_canvas_elems = map_budget;
  SpadeEngine engine(cfg);
  auto csrc = MakeInMemorySource("parcels", parcels, cfg);
  auto psrc = MakeInMemorySource("points", points, cfg);
  (void)engine.WarmIndexes(*csrc, true);
  (void)engine.WarmIndexes(*psrc, false);
  return bench::TimeIt([&] {
    auto r = engine.SpatialJoin(*csrc, *psrc);
    if (r.ok() && stats != nullptr) *stats = r.value().stats;
  });
}

double SelectWithConfig(SpadeConfig cfg, const SpatialDataset& points,
                        const MultiPolygon& poly, QueryStats* stats) {
  // The resolution sweep needs room for the constraint canvas itself
  // (4096^2 x 16 B alone exceeds the default 256 MB device).
  const size_t canvas_bytes =
      static_cast<size_t>(cfg.canvas_resolution) * cfg.canvas_resolution * 16;
  cfg.device_memory_budget =
      std::max(cfg.device_memory_budget, 4 * canvas_bytes);
  SpadeEngine engine(cfg);
  auto src = MakeInMemorySource("points", points, cfg);
  (void)engine.WarmIndexes(*src, false);
  return bench::TimeIt([&] {
    auto r = engine.SpatialSelection(*src, poly);
    if (!r.ok()) {
      std::fprintf(stderr, "selection failed: %s\n",
                   r.status().ToString().c_str());
    } else if (stats != nullptr) {
      *stats = r.value().stats;
    }
  });
}

}  // namespace
}  // namespace spade

int main() {
  using namespace spade;
  const size_t n = bench::Scaled(400000);
  const SpatialDataset points = GenerateGaussianPoints(n, 1);
  const SpatialDataset parcels = GenerateParcels(2500, 2);
  const MultiPolygon poly = bench::QueryStar(0.3);

  bench::PrintHeader("Ablation 1: canvas resolution (selection, n = " +
                     std::to_string(n) + ")");
  bench::PrintRow({"resolution", "time_s", "exact_tests", "fragments"},
                  {12, 10, 14, 14});
  for (const int res : {64, 256, 1024, 4096}) {
    SpadeConfig cfg = bench::BenchConfig();
    cfg.canvas_resolution = res;
    QueryStats st;
    const double s = SelectWithConfig(cfg, points, poly, &st);
    bench::PrintRow({std::to_string(res), bench::Fmt(s),
                     std::to_string(st.exact_tests),
                     std::to_string(st.fragments)},
                    {12, 10, 14, 14});
  }

  bench::PrintHeader("Ablation 2: Map implementation (selection)");
  bench::PrintRow({"map_impl", "time_s"}, {12, 10});
  {
    SpadeConfig one = bench::BenchConfig();
    SpadeConfig two = bench::BenchConfig();
    two.max_map_canvas_elems = 1;  // force the 2-pass implementation
    const double s1 = SelectWithConfig(one, points, poly, nullptr);
    const double s2 = SelectWithConfig(two, points, poly, nullptr);
    bench::PrintRow({"1-pass", bench::Fmt(s1)}, {12, 10});
    bench::PrintRow({"2-pass", bench::Fmt(s2)}, {12, 10});
  }

  bench::PrintHeader("Ablation 3: join canvas resolution (2500 parcels)");
  bench::PrintRow({"resolution", "time_s", "passes"}, {12, 10, 10});
  for (const int res : {256, 1024, 2048}) {
    QueryStats st;
    const double s = JoinWithResolution(res, bench::BenchConfig().max_map_canvas_elems,
                                        parcels, points, &st);
    bench::PrintRow({std::to_string(res), bench::Fmt(s),
                     std::to_string(st.render_passes)},
                    {12, 10, 10});
  }

  bench::PrintHeader(
      "Ablation 4: grid cell budget (selection; smaller cells = finer "
      "filtering, more transfers)");
  bench::PrintRow({"cell_bytes", "time_s", "cells", "io_s"}, {12, 10, 10, 10});
  for (const size_t cell : {size_t{1} << 20, size_t{4} << 20,
                            size_t{16} << 20, size_t{64} << 20}) {
    SpadeConfig cfg = bench::BenchConfig();
    cfg.max_cell_bytes = cell;
    QueryStats st;
    const double s = SelectWithConfig(cfg, points, poly, &st);
    bench::PrintRow({std::to_string(cell >> 20) + "MB", bench::Fmt(s),
                     std::to_string(st.cells_processed), bench::Fmt(st.io_seconds)},
                    {12, 10, 10, 10});
  }
  return 0;
}
