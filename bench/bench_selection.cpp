// Fig. 5 — spatial selection queries with polygonal constraints.
//   (a) taxi-like points, NYC neighborhood constraints
//   (b) tweet-like points, county constraints
//   (c) building-like polygons, country constraints
// Systems: SPADE, STIG (points only), GeoSpark-like cluster, S2-like
// in-memory library, plus a full-scan baseline standing in for the RDBMS
// data point of Section 6.2. The bottom rows print SPADE's time breakdown
// (I/O / GPU / polygon processing / CPU), as in Fig. 5 bottom.
#include <algorithm>
#include <numeric>

#include "baselines/cluster.h"
#include "baselines/s2like.h"
#include "baselines/stig.h"
#include "bench_common.h"
#include "datagen/realdata.h"
#include "geom/predicates.h"

namespace spade {
namespace {

using bench::Fmt;

struct QueryRow {
  size_t constraint_id;
  double spade_s = 0, stig_s = 0, cluster_s = 0, s2_s = 0, scan_s = 0;
  size_t result = 0;
  QueryStats stats;
};

void RunScenario(const std::string& title, const std::string& key,
                 const SpatialDataset& data,
                 const SpatialDataset& constraints, size_t num_queries,
                 bool points) {
  bench::PrintHeader(title);
  SpadeEngine engine(bench::BenchConfig());
  auto src = MakeInMemorySource(data.name, data, engine.config());
  (void)engine.WarmIndexes(*src, /*need_layers=*/false);

  // Baselines.
  std::vector<Vec2> pts;
  if (points) {
    pts.reserve(data.size());
    for (const auto& g : data.geoms) pts.push_back(g.point());
  }
  ThreadPool pool;
  std::unique_ptr<StigIndex> stig;
  std::unique_ptr<S2LikePointIndex> s2_points;
  std::unique_ptr<S2LikeShapeIndex> s2_shapes;
  if (points) {
    stig = std::make_unique<StigIndex>(pts, &pool);
    s2_points = std::make_unique<S2LikePointIndex>(pts);
  } else {
    s2_shapes = std::make_unique<S2LikeShapeIndex>(&data.geoms);
  }
  ClusterConfig ccfg;
  const ClusterDataset cluster_data(&data, ccfg);
  const ClusterEngine cluster(ccfg);

  // Sample constraint polygons spread across the dataset.
  std::vector<QueryRow> rows;
  const size_t step = std::max<size_t>(1, constraints.size() / num_queries);
  for (size_t q = 0; q < constraints.size() && rows.size() < num_queries;
       q += step) {
    QueryRow row;
    row.constraint_id = q;
    const MultiPolygon& poly = constraints.geoms[q].polygon();

    row.spade_s = bench::TimeIt([&] {
      auto r = engine.SpatialSelection(*src, poly);
      row.result = r.ok() ? r.value().ids.size() : 0;
      if (r.ok()) row.stats = r.value().stats;
    });
    if (points) {
      row.stig_s = bench::TimeIt([&] { stig->PolygonSelect(poly); });
      row.s2_s = bench::TimeIt([&] { s2_points->SelectInPolygon(poly); });
    } else {
      row.s2_s = bench::TimeIt([&] { s2_shapes->SelectIntersecting(poly); });
    }
    row.cluster_s = bench::TimeIt([&] { cluster.Select(cluster_data, poly); });
    row.scan_s = bench::TimeIt([&] {
      size_t count = 0;
      for (const auto& g : data.geoms) {
        count += GeometryIntersectsPolygon(g, poly);
      }
      (void)count;
    });
    rows.push_back(row);
  }

  // Order by SPADE time, as in the figure.
  std::sort(rows.begin(), rows.end(),
            [](const QueryRow& a, const QueryRow& b) {
              return a.spade_s < b.spade_s;
            });

  const std::vector<int> widths = {8, 10, 10, 10, 10, 10, 10};
  bench::PrintRow({"query", "|result|", "SPADE", "STIG", "GeoSpark",
                   "S2", "Scan"},
                  widths);
  for (const auto& row : rows) {
    bench::PrintRow({std::to_string(row.constraint_id),
                     std::to_string(row.result), Fmt(row.spade_s),
                     points ? Fmt(row.stig_s) : "-", Fmt(row.cluster_s),
                     Fmt(row.s2_s), Fmt(row.scan_s)},
                    widths);
    bench::PrintBreakdown(row.stats);
  }

  std::vector<double> latencies;
  double total = 0;
  int64_t fragments = 0;
  for (const auto& row : rows) {
    latencies.push_back(row.spade_s);
    total += row.spade_s;
    fragments += row.stats.fragments;
  }
  bench::Records().push_back(
      bench::MakeRecord(key, latencies, total, fragments));
}

}  // namespace
}  // namespace spade

int main(int argc, char** argv) {
  using namespace spade;
  bench::ParseArgs(argc, argv);
  const size_t taxi_n = bench::Scaled(1000000);
  const size_t tweet_n = bench::Scaled(1000000);
  const size_t building_n = bench::Scaled(60000);

  RunScenario("Fig 5(a): selection over taxi-like points (n=" +
                  std::to_string(taxi_n) + "), neighborhood constraints",
              "selection_taxi", TaxiLikePoints(taxi_n, 1),
              NeighborhoodLikePolygons(2), 10,
              /*points=*/true);
  RunScenario("Fig 5(b): selection over tweet-like points (n=" +
                  std::to_string(tweet_n) + "), county constraints",
              "selection_tweets", TweetLikePoints(tweet_n, 3),
              CountyLikePolygons(4, 24, 24), 10,
              /*points=*/true);
  RunScenario("Fig 5(c): selection over building-like polygons (n=" +
                  std::to_string(building_n) + "), country constraints",
              "selection_buildings", BuildingLikePolygons(building_n, 5),
              CountryLikePolygons(6, 10, 8), 10,
              /*points=*/false);
  bench::WriteJsonIfRequested();
  return 0;
}
