// Micro-benchmarks (google-benchmark) of the core primitives: exact
// predicates, rasterization, canvas construction, boundary-index tests,
// scan/compaction, and triangulation. These quantify the constants behind
// the query-level numbers of the paper-reproduction benches.
#include <benchmark/benchmark.h>

#include <random>

#include "canvas/canvas_builder.h"
#include "geom/predicates.h"
#include "geom/projection.h"
#include "geom/triangulate.h"
#include "gfx/rasterizer.h"
#include "gfx/scan.h"

namespace spade {
namespace {

std::mt19937_64 g_gen(12345);

double U(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(g_gen);
}

Polygon MakeStar(int verts) {
  Polygon p;
  for (int i = 0; i < verts; ++i) {
    const double t = 2 * M_PI * i / verts;
    const double r = (i % 2 == 0) ? 4.0 : 2.5;
    p.outer.push_back({5 + r * std::cos(t), 5 + r * std::sin(t)});
  }
  return p;
}

void BM_Orient2D(benchmark::State& state) {
  const Vec2 a{U(0, 1), U(0, 1)}, b{U(0, 1), U(0, 1)}, c{U(0, 1), U(0, 1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Orient2D(a, b, c));
  }
}
BENCHMARK(BM_Orient2D);

void BM_PointInPolygon(benchmark::State& state) {
  const Polygon p = MakeStar(static_cast<int>(state.range(0)));
  const Vec2 q{5, 5};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PointInPolygon(p, q));
  }
}
BENCHMARK(BM_PointInPolygon)->Arg(8)->Arg(64)->Arg(512);

void BM_PointInTriangle(benchmark::State& state) {
  const Vec2 a{0, 0}, b{4, 0}, c{0, 4}, q{1, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(PointInTriangle(a, b, c, q));
  }
}
BENCHMARK(BM_PointInTriangle);

void BM_Triangulate(benchmark::State& state) {
  const Polygon p = MakeStar(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Triangulate(p));
  }
}
BENCHMARK(BM_Triangulate)->Arg(16)->Arg(128)->Arg(1024);

void BM_RasterizeTriangleConservative(benchmark::State& state) {
  const Viewport vp(Box(0, 0, 10, 10), static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)));
  size_t sink = 0;
  for (auto _ : state) {
    sink += RasterizeTriangle(vp, {1, 1}, {9, 2}, {4, 9}, true,
                              [&](int x, int y) { benchmark::DoNotOptimize(x + y); });
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RasterizeTriangleConservative)->Arg(64)->Arg(256)->Arg(1024);

void BM_RasterizeSegmentConservative(benchmark::State& state) {
  const Viewport vp(Box(0, 0, 10, 10), 1024, 1024);
  for (auto _ : state) {
    RasterizeSegmentConservative(vp, {0.5, 0.5}, {9.5, 8.2},
                                 [&](int x, int y) { benchmark::DoNotOptimize(x + y); });
  }
}
BENCHMARK(BM_RasterizeSegmentConservative);

void BM_BuildPolygonCanvas(benchmark::State& state) {
  GfxDevice device(4);
  const Viewport vp(Box(0, 0, 10, 10), static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(0)));
  MultiPolygon mp;
  mp.parts.push_back(MakeStar(64));
  const Triangulation tri = Triangulate(mp);
  CanvasBuilder builder(&device, vp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.BuildPolygonCanvas({0}, {&mp}, {&tri}));
  }
}
BENCHMARK(BM_BuildPolygonCanvas)->Arg(256)->Arg(1024);

void BM_CanvasTestPoint(benchmark::State& state) {
  GfxDevice device(4);
  const Viewport vp(Box(0, 0, 10, 10), 1024, 1024);
  MultiPolygon mp;
  mp.parts.push_back(MakeStar(64));
  const Triangulation tri = Triangulate(mp);
  CanvasBuilder builder(&device, vp);
  const Canvas canvas = builder.BuildPolygonCanvas({0}, {&mp}, {&tri});
  std::vector<GeomId> owners;
  for (auto _ : state) {
    owners.clear();
    canvas.TestPoint({U(0, 10), U(0, 10)}, &owners);
    benchmark::DoNotOptimize(owners.size());
  }
}
BENCHMARK(BM_CanvasTestPoint);

void BM_CompactNonNull(benchmark::State& state) {
  ThreadPool pool(4);
  std::vector<uint32_t> in(static_cast<size_t>(state.range(0)), kTexNull);
  for (size_t i = 0; i < in.size(); i += 3) in[i] = static_cast<uint32_t>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompactNonNull(in, &pool));
  }
}
BENCHMARK(BM_CompactNonNull)->Arg(1 << 16)->Arg(1 << 20);

void BM_Mercator(benchmark::State& state) {
  const Vec2 p{U(-180, 180), U(-80, 80)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(LonLatToWebMercator(p));
  }
}
BENCHMARK(BM_Mercator);

}  // namespace
}  // namespace spade

BENCHMARK_MAIN();
