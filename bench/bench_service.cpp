// Service-layer benchmark: closed-loop concurrent clients driving one
// SpadeService, across worker-pool sizes. Reports throughput, service-side
// p50/p95/p99 latency, queue wait, and the cell-cache sharing counters —
// the knobs the service layer adds on top of single-query execution.
#include <atomic>
#include <thread>

#include "bench_common.h"
#include "datagen/realdata.h"
#include "datagen/spider.h"
#include "engine/tuning.h"
#include "service/service.h"

using namespace spade;
using namespace spade::bench;

namespace {

struct RunResult {
  double seconds = 0;
  int64_t completed = 0;
  int64_t rejected = 0;
  ServiceStats stats;
};

RunResult RunWorkload(size_t workers, size_t device_slots, int clients,
                      int rounds) {
  ServiceConfig sc;
  sc.workers = workers;
  sc.device_slots = device_slots;
  sc.queue_capacity = 256;
  SpadeService service(BenchConfig(), sc);

  SpadeConfig cfg = BenchConfig();
  (void)service.RegisterSource(
      "pts", MakeTunedInMemorySource(
                 "pts", GenerateUniformPoints(Scaled(200000), 11), cfg));
  (void)service.RegisterSource(
      "hoods",
      MakeTunedInMemorySource("hoods", NeighborhoodLikePolygons(12), cfg));

  // One warm pass per request kind so index builds don't skew latencies
  // (the paper's measurements exclude index construction).
  std::vector<Request> mix;
  {
    Request r;
    r.kind = RequestKind::kRange;
    r.dataset = "pts";
    r.range = Box(0.2, 0.2, 0.7, 0.7);
    mix.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kKnn;
    r.dataset = "pts";
    r.point = {0.5, 0.5};
    r.k = 10;
    mix.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kJoin;
    r.dataset = "hoods";
    r.dataset2 = "pts";
    mix.push_back(r);
  }
  {
    Request r;
    r.kind = RequestKind::kDistance;
    r.dataset = "pts";
    r.point = {0.4, 0.6};
    r.radius = 0.1;
    mix.push_back(r);
  }
  for (const Request& req : mix) (void)service.Execute(req);

  std::atomic<int64_t> completed{0};
  std::atomic<int64_t> rejected{0};
  RunResult out;
  out.seconds = TimeIt([&] {
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
      threads.emplace_back([&, t] {
        for (int round = 0; round < rounds; ++round) {
          Response r = service.Execute(mix[(t + round) % mix.size()]);
          if (r.status.code() == Status::Code::kOverloaded) {
            rejected.fetch_add(1, std::memory_order_relaxed);
          } else if (r.status.ok()) {
            completed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  });
  out.completed = completed.load();
  out.rejected = rejected.load();
  out.stats = service.Snapshot();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  const int clients = 8;
  const int rounds = 6;
  PrintHeader("Concurrent query service: closed-loop clients=" +
              std::to_string(clients) + ", rounds=" + std::to_string(rounds));
  const std::vector<int> widths = {9, 7, 10, 11, 11, 11, 12, 9, 8};
  PrintRow({"workers", "slots", "req/s", "p50(s)", "p95(s)", "p99(s)",
            "qwait_p95", "shared", "hits"},
           widths);
  for (size_t workers : {1, 2, 4}) {
    for (size_t slots : {1, 2}) {
      if (slots > workers) continue;
      RunResult r = RunWorkload(workers, slots, clients, rounds);
      PrintRow({FmtCount(workers), FmtCount(slots),
                Fmt(r.completed / r.seconds, 1), Fmt(r.stats.latency_p50),
                Fmt(r.stats.latency_p95), Fmt(r.stats.latency_p99),
                Fmt(r.stats.queue_wait_p95), FmtCount(r.stats.cell_shared_loads),
                FmtCount(r.stats.cell_cache_hits)},
               widths);
      BenchRecord rec;
      rec.name = "service_w" + std::to_string(workers) + "_s" +
                 std::to_string(slots);
      rec.samples = r.completed;
      rec.p50 = r.stats.latency_p50;
      rec.p95 = r.stats.latency_p95;
      rec.p99 = r.stats.latency_p99;
      rec.mean = r.stats.latency_mean;
      rec.throughput = r.seconds > 0 ? r.completed / r.seconds : 0;
      Records().push_back(rec);
    }
  }
  std::printf(
      "\nExpected shape: throughput grows with workers until device slots\n"
      "saturate; shared loads appear when concurrent queries overlap on a\n"
      "cell; queue wait collapses as workers absorb the closed loop.\n");
  WriteJsonIfRequested();
  return 0;
}
