// SIMD tier ablation: the same fragment-bound workloads executed with the
// pipeline pinned to the scalar kernel tier and with the full runtime
// dispatch (CPUID-selected SSE2/AVX2). Results are bit-identical by
// construction (tests/simd_kernel_test.cc); this measures the speedup.
//
//   bench_simd [--json=BENCH_simd.json]
//
// Scenario groups:
//   kernel_*     tight loops over the dispatched kernels themselves
//                (span fill, stream compaction, prefix scan, band extents)
//   selection_*  / join_polypoly   end-to-end engine queries whose profile
//                is dominated by fragment work (canvas build + row scans)
//   selection_points               a canvas-light control expected within
//                noise of scalar (documents where SIMD does not help)
#include <string>
#include <vector>

#include "bench_common.h"
#include "canvas/canvas_builder.h"
#include "common/simd.h"
#include "datagen/realdata.h"
#include "datagen/spider.h"
#include "geom/predicates_batch.h"
#include "geom/triangulate.h"
#include "gfx/device.h"
#include "gfx/scan.h"
#include "gfx/simd_kernels.h"
#include "gfx/texture.h"
#include "gfx/viewport.h"

namespace spade {
namespace {

/// Latency samples of `fn` run `iters` times under a pinned tier.
template <typename F>
bench::BenchRecord Measure(const std::string& name, simd::Tier tier,
                           int iters, F&& fn) {
  simd::TierOverrideForTesting pin(tier);
  std::vector<double> lat;
  lat.reserve(iters);
  int64_t fragments = 0;
  const double total = bench::TimeIt([&] {
    for (int i = 0; i < iters; ++i) {
      lat.push_back(bench::TimeIt([&] { fragments += fn(); }));
    }
  });
  return bench::MakeRecord(name, lat, total, fragments);
}

/// Run a scenario under scalar and under the detected tier; print and
/// record both plus the speedup.
template <typename F>
void Ablate(const std::string& name, int iters, F&& fn) {
  const bench::BenchRecord scalar =
      Measure(name + "_scalar", simd::Tier::kScalar, iters, fn);
  const bench::BenchRecord simd =
      Measure(name + "_simd", simd::DetectedTier(), iters, fn);
  bench::Records().push_back(scalar);
  bench::Records().push_back(simd);
  const double speedup = simd.mean > 0 ? scalar.mean / simd.mean : 0;
  bench::PrintRow({name, bench::Fmt(scalar.mean * 1e3),
                   bench::Fmt(simd.mean * 1e3), bench::Fmt(speedup, 2) + "x"},
                  {28, 14, 14, 10});
}

// --- kernel microbenchmarks -------------------------------------------------

void KernelScenarios() {
  bench::PrintHeader("SIMD kernel ablation (ms per iteration)");
  bench::PrintRow({"kernel", "scalar", "simd", "speedup"}, {28, 14, 14, 10});

  // Working set sized like the real fragment pipeline touches it: kernels
  // run over row spans (<= canvas width) of a texture plane that stays
  // cache-resident across a pass, not over one cold multi-MB sweep.
  const size_t n = 16 << 10;  // one L2-resident plane tile
  const int reps = static_cast<int>(bench::Scaled(256));
  std::vector<uint32_t> src(n);
  for (size_t i = 0; i < n; ++i) {
    src[i] = (i * 2654435761u) % 3 == 0 ? kTexNull : static_cast<uint32_t>(i);
  }
  std::vector<uint32_t> out32(n);
  std::vector<uint64_t> out64(n);

  Ablate("kernel_fill", 30, [&] {
    const auto& k = gfx_simd::Active();
    for (int r = 0; r < reps; ++r) k.fill_u32(out32.data(), n, 42);
    return static_cast<int64_t>(n) * reps;
  });
  Ablate("kernel_compact", 30, [&] {
    const auto& k = gfx_simd::Active();
    int64_t kept = 0;
    for (int r = 0; r < reps; ++r) {
      kept += k.compact_neq_u32(src.data(), n, kTexNull, out32.data(), n);
    }
    return kept;
  });
  Ablate("kernel_row_indices", 30, [&] {
    const auto& k = gfx_simd::Active();
    int64_t kept = 0;
    for (int r = 0; r < reps; ++r) {
      kept += k.indices_neq_u32(src.data(), n, kTexNull, 0, out32.data(), n);
    }
    return kept;
  });
  Ablate("kernel_prefix_scan", 30, [&] {
    const auto& k = gfx_simd::Active();
    int64_t total = 0;
    for (int r = 0; r < reps; ++r) {
      total += k.exclusive_prefix_u32(src.data(), out64.data(), n);
    }
    return total;
  });

  // Band extents: the per-scanline edge-function evaluation.
  const Vec2 tri[3] = {{0.3, 0.1}, {900.7, 350.2}, {420.1, 980.9}};
  Ablate("kernel_band_extents", 40, [&] {
    double xmin, xmax;
    int64_t hits = 0;
    for (int y = 0; y < 1024; ++y) {
      hits += gfx_simd::Active().band_x_range(tri, y, y + 1.0, &xmin, &xmax);
    }
    return hits;
  });

  // Batch point-in-triangle / point-segment-distance (exact tests), sized
  // like a dense boundary bucket (the SoA blocks the canvas packs).
  const size_t m = 4096;
  const int breps = static_cast<int>(bench::Scaled(64));
  std::vector<double> ax(m), ay(m), bx(m), by(m), cx(m), cy(m), dist(m);
  std::vector<uint8_t> inside(m);
  for (size_t i = 0; i < m; ++i) {
    const double t = static_cast<double>(i) / m;
    ax[i] = t;
    ay[i] = 1 - t;
    bx[i] = t + 0.5;
    by[i] = t * t;
    cx[i] = 1 - t * t;
    cy[i] = t + 0.25;
  }
  Ablate("kernel_point_in_tris", 40, [&] {
    for (int r = 0; r < breps; ++r) {
      PointInTrianglesBatch(ax.data(), ay.data(), bx.data(), by.data(),
                            cx.data(), cy.data(), m, {0.5, 0.5},
                            inside.data());
    }
    return static_cast<int64_t>(m) * breps;
  });
  Ablate("kernel_point_seg_dist", 40, [&] {
    for (int r = 0; r < breps; ++r) {
      PointSegmentDistancesBatch({0.5, 0.5}, ax.data(), ay.data(), bx.data(),
                                 by.data(), m, dist.data());
    }
    return static_cast<int64_t>(m) * breps;
  });
}

// --- end-to-end engine scenarios --------------------------------------------

void EngineScenarios() {
  bench::PrintHeader("SIMD end-to-end ablation (ms per query)");
  bench::PrintRow({"scenario", "scalar", "simd", "speedup"}, {28, 14, 14, 10});

  // The polygon canvas build itself (interior span fills, conservative
  // boundary pass, bucket row scans) — the pipeline stage the
  // vectorization targets, with no triangulation or index work in the
  // timed region. Two shapes of the same pass structure:
  //   parcels   short perimeters, large interiors at high resolution —
  //             fill/row-scan (fragment) bound, where the kernels run
  //   countries boundary-heavy — the scalar conservative pass dominates
  //             (Amdahl), documenting where vectorization cannot help
  auto canvas_build = [](const std::string& name, SpatialDataset data,
                         int resolution, int iters) {
    GfxDevice device;
    const Viewport vp(data.Bounds(), resolution, resolution);
    CanvasBuilder builder(&device, vp);
    std::vector<GeomId> ids;
    std::vector<const MultiPolygon*> polys;
    std::vector<Triangulation> tri_storage;
    tri_storage.reserve(data.size());
    std::vector<const Triangulation*> tris;
    for (size_t i = 0; i < data.size(); ++i) {
      ids.push_back(static_cast<GeomId>(i));
      polys.push_back(&data.geoms[i].polygon());
      tri_storage.push_back(Triangulate(data.geoms[i].polygon()));
    }
    for (const auto& t : tri_storage) tris.push_back(&t);
    Ablate(name, iters, [&] {
      Canvas c = builder.BuildPolygonCanvas(ids, polys, tris);
      return static_cast<int64_t>(c.texture().width());
    });
  };
  canvas_build("canvas_build_parcels", GenerateParcels(256, 17), 2048, 10);
  canvas_build("canvas_build_countries", CountryLikePolygons(3), 1024, 10);

  // Fragment-bound: selection over polygon data (canvas build = interior
  // span fills + boundary buckets + row scans dominates).
  {
    SpadeEngine engine(bench::BenchConfig());
    SpatialDataset buildings =
        BuildingLikePolygons(bench::Scaled(30000), 11);
    auto src = MakeInMemorySource("buildings", buildings, engine.config());
    (void)engine.WarmIndexes(*src, false);
    const Box window{{0.05, 0.05}, {0.95, 0.95}};
    Ablate("selection_buildings", 8, [&] {
      auto r = engine.RangeSelection(*src, window);
      return r.ok() ? r.value().stats.fragments : 0;
    });
  }

  // Fragment-bound: polygon x polygon join (TestPolygon row scans +
  // MatchTriangle over boundary buckets).
  {
    SpadeEngine engine(bench::BenchConfig());
    SpatialDataset counties = CountyLikePolygons(7);
    SpatialDataset zipcodes = ZipcodeLikePolygons(8);
    auto asrc = MakeInMemorySource("counties", counties, engine.config());
    auto bsrc = MakeInMemorySource("zipcodes", zipcodes, engine.config());
    (void)engine.WarmIndexes(*asrc, true);
    (void)engine.WarmIndexes(*bsrc, false);
    Ablate("join_polypoly", 4, [&] {
      auto r = engine.SpatialJoin(*asrc, *bsrc);
      return r.ok() ? r.value().stats.fragments : 0;
    });
  }

  // Canvas-light control: point selection over a small window — dominated
  // by index filtering and readback, expected within noise of scalar.
  {
    SpadeEngine engine(bench::BenchConfig());
    SpatialDataset pts = GenerateUniformPoints(bench::Scaled(200000), 5);
    auto src = MakeInMemorySource("pts", pts, engine.config());
    (void)engine.WarmIndexes(*src, false);
    const Box window{{0.4, 0.4}, {0.6, 0.6}};
    Ablate("selection_points", 12, [&] {
      auto r = engine.RangeSelection(*src, window);
      return r.ok() ? r.value().stats.fragments : 0;
    });
  }
}

}  // namespace
}  // namespace spade

int main(int argc, char** argv) {
  using namespace spade;
  bench::ParseArgs(argc, argv);
  std::printf("detected tier: %s (%d x 32-bit lanes)\n",
              simd::TierName(simd::DetectedTier()),
              simd::TierLanes32(simd::DetectedTier()));
  KernelScenarios();
  EngineScenarios();
  bench::WriteJsonIfRequested();
  return 0;
}
