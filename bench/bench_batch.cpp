// bench_batch — the multi-query batch scheduler under concurrent load.
//
// M closed-loop clients drive one SpadeService over a multi-cell point
// dataset, with batching off (the solo baseline) and on, across two
// workloads:
//
//   * shared  — clients draw from a small pool of selection constraints
//     with zipf-skewed popularity (rank-1 dominates), so concurrent
//     requests repeatedly touch the same grid cells and often duplicate
//     each other exactly. This is the workload batching exists for: one
//     dataset draw serves k members per cell, and exact duplicates hit
//     the result cache.
//   * disjoint — every in-flight request targets its own interior tile of
//     the unit square, so batches never share a cell and the scheduler
//     must get out of the way (adaptive window collapse + solo fallback).
//
// Expected shape: >= 2x throughput on `shared` with batching on; `disjoint`
// within noise of the baseline.
#include <atomic>
#include <mutex>
#include <random>
#include <thread>

#include "bench_common.h"
#include "datagen/spider.h"
#include "obs/metrics.h"
#include "service/service.h"

using namespace spade;
using namespace spade::bench;

namespace {

constexpr int kClients = 8;
constexpr int kRounds = 30;

MultiPolygon BoxConstraint(const Box& b) {
  MultiPolygon mp;
  mp.parts.push_back(Polygon::FromBox(b));
  return mp;
}

Request Selection(const Box& b) {
  Request r;
  r.kind = RequestKind::kSelection;
  r.dataset = "pts";
  r.constraint = BoxConstraint(b);
  return r;
}

/// Per-client request schedules, identical across the batch-on and
/// batch-off runs of a scenario so the comparison is apples to apples.
using Schedule = std::vector<std::vector<Request>>;

/// Zipf-skewed draws from a pool of hotspot constraints: the pool's
/// rank-1 query dominates, so concurrent clients duplicate each other.
Schedule SharedSchedule() {
  std::vector<Request> pool;
  std::mt19937_64 rng(1234);
  std::uniform_real_distribution<double> uni(0.05, 0.75);
  for (int i = 0; i < 8; ++i) {
    const double x = uni(rng), y = uni(rng);
    const double w = 0.1 + 0.15 * ((i * 7) % 5) / 4.0;
    pool.push_back(Selection(Box(x, y, x + w, y + w)));
  }
  std::vector<double> cdf;
  double sum = 0;
  for (size_t r = 1; r <= pool.size(); ++r) {
    cdf.push_back(sum += 1.0 / std::pow(double(r), 1.5));
  }
  std::uniform_real_distribution<double> pick(0.0, sum);
  Schedule sched(kClients);
  for (auto& client : sched) {
    for (int r = 0; r < kRounds; ++r) {
      const double u = pick(rng);
      size_t rank = 0;
      while (rank + 1 < cdf.size() && cdf[rank] < u) ++rank;
      client.push_back(pool[rank]);
    }
  }
  return sched;
}

/// Every in-flight request gets its own interior tile (15% margin keeps
/// adjacent tiles out of each other's boundary cells), so concurrent
/// requests never share a cell.
Schedule DisjointSchedule() {
  constexpr int kGrid = 16;  // 256 tiles >= total requests: never repeated
  Schedule sched(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRounds; ++r) {
      const int tile = (c * kRounds + r) % (kGrid * kGrid);
      const double tx = (tile % kGrid) / double(kGrid);
      const double ty = (tile / kGrid) / double(kGrid);
      const double m = 0.15 / kGrid;
      sched[c].push_back(Selection(Box(tx + m, ty + m,
                                       tx + 1.0 / kGrid - m,
                                       ty + 1.0 / kGrid - m)));
    }
  }
  return sched;
}

struct Load {
  double seconds = 0;
  int64_t completed = 0;
  std::vector<double> latencies;
  int64_t batches = 0, shared_draws = 0, saved_passes = 0, cache_hits = 0;
};

int64_t Counter(const char* name) {
  return obs::MetricsRegistry::Global().counter(name)->value();
}

Load RunWorkload(bool batch_on, const Schedule& sched) {
  ServiceConfig sc;
  sc.workers = kClients;
  sc.device_slots = 2;
  sc.queue_capacity = 256;
  sc.batch_enabled = batch_on;
  sc.batch_window_ms = 2.0;
  // A moderate canvas keeps constraint-canvas construction (per query,
  // unshareable) from drowning out the per-cell passes batching shares.
  SpadeConfig ecfg = BenchConfig();
  ecfg.canvas_resolution = 128;
  SpadeService service(ecfg, sc);
  // A small max_cell_bytes forces a multi-cell grid — per-cell passes are
  // the unit of work batching shares.
  (void)service.RegisterSource(
      "pts", std::make_unique<InMemorySource>(
                 "pts", GenerateUniformPoints(Scaled(1200000), 11),
                 /*max_cell_bytes=*/256 << 10));
  (void)service.Execute(sched[0][0]);  // warm: index build excluded

  Load out;
  const int64_t batches0 = Counter("spade_batch_total");
  const int64_t shared0 = Counter("spade_batch_shared_draws_total");
  const int64_t saved0 = Counter("spade_batch_saved_passes_total");
  const int64_t hits0 = Counter("spade_result_cache_hits_total");
  std::mutex mu;
  std::atomic<int64_t> completed{0};
  out.seconds = TimeIt([&] {
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double> local;
        for (const Request& req : sched[static_cast<size_t>(c)]) {
          Response r = service.Execute(req);
          if (r.status.ok()) {
            completed.fetch_add(1, std::memory_order_relaxed);
            local.push_back(r.total_seconds);
          }
        }
        std::lock_guard<std::mutex> lock(mu);
        out.latencies.insert(out.latencies.end(), local.begin(), local.end());
      });
    }
    for (auto& th : threads) th.join();
  });
  out.completed = completed.load();
  out.batches = Counter("spade_batch_total") - batches0;
  out.shared_draws = Counter("spade_batch_shared_draws_total") - shared0;
  out.saved_passes = Counter("spade_batch_saved_passes_total") - saved0;
  out.cache_hits = Counter("spade_result_cache_hits_total") - hits0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ParseArgs(argc, argv);
  PrintHeader("Batch scheduler: " + std::to_string(kClients) +
              " concurrent clients x " + std::to_string(kRounds) +
              " requests (zipf-shared vs disjoint tiles)");
  const std::vector<int> widths = {12, 7, 10, 11, 11, 11};
  PrintRow({"workload", "batch", "req/s", "p50(s)", "p95(s)", "p99(s)"},
           widths);

  struct Scenario {
    const char* name;
    Schedule sched;
  };
  const Scenario scenarios[] = {{"shared", SharedSchedule()},
                                {"disjoint", DisjointSchedule()}};
  for (const Scenario& sc : scenarios) {
    double solo_tput = 0;
    for (bool batch_on : {false, true}) {
      Load l = RunWorkload(batch_on, sc.sched);
      BenchRecord rec = MakeRecord(
          std::string("batch_") + sc.name + (batch_on ? "_on" : "_off"),
          l.latencies, l.seconds, 0);
      PrintRow({sc.name, batch_on ? "on" : "off", Fmt(rec.throughput, 1),
                Fmt(rec.p50), Fmt(rec.p95), Fmt(rec.p99)},
               widths);
      Records().push_back(rec);
      if (!batch_on) {
        solo_tput = rec.throughput;
      } else {
        std::printf(
            "    batches=%lld shared_draws=%lld saved_passes=%lld "
            "cache_hits=%lld\n",
            static_cast<long long>(l.batches),
            static_cast<long long>(l.shared_draws),
            static_cast<long long>(l.saved_passes),
            static_cast<long long>(l.cache_hits));
        if (solo_tput > 0) {
          std::printf("    %s speedup: %.2fx\n", sc.name,
                      rec.throughput / solo_tput);
        }
      }
    }
  }
  std::printf(
      "\nExpected shape: the zipf-shared workload gains >= 2x from shared\n"
      "cell passes and the result cache; the disjoint workload stays within\n"
      "noise of the solo baseline (adaptive window collapse).\n");
  WriteJsonIfRequested();
  return 0;
}
