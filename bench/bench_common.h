// Shared infrastructure for the paper-reproduction benchmarks: dataset
// construction at a configurable scale, wall-clock measurement, and
// paper-style table printing. Every binary regenerates one table or figure
// of Section 6; EXPERIMENTS.md records the expected shapes.
//
// Scale: datasets default to a laptop-friendly fraction of the paper's
// (billions of points do not fit this sandbox); set SPADE_BENCH_SCALE to
// grow or shrink everything proportionally (1.0 = defaults).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "engine/spade.h"
#include "storage/dataset.h"

namespace spade::bench {

inline double Scale() {
  const char* s = std::getenv("SPADE_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline size_t Scaled(size_t n) {
  return static_cast<size_t>(n * Scale()) + 1;
}

/// Engine configuration used across benchmarks: a 256 MB simulated device
/// and a 1024px canvas, the commodity-laptop profile of Section 6.1.
inline SpadeConfig BenchConfig() {
  SpadeConfig cfg;
  cfg.device_memory_budget = 256ull << 20;
  cfg.canvas_resolution = 1024;
  return cfg;
}

/// Time a callable, returning seconds.
template <typename F>
double TimeIt(F&& fn) {
  Stopwatch sw;
  fn();
  return sw.ElapsedSeconds();
}

// --- table printing ---------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", widths[i], cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtCount(uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Print a SPADE time breakdown line (the Fig. 5 bottom row).
inline void PrintBreakdown(const QueryStats& st) {
  std::printf(
      "    breakdown: io=%.3fs gpu=%.3fs polygon=%.3fs cpu=%.3fs | "
      "passes=%lld fragments=%lld cells=%lld transferred=%.1fMB\n",
      st.io_seconds, st.gpu_seconds, st.polygon_seconds, st.cpu_seconds,
      static_cast<long long>(st.render_passes),
      static_cast<long long>(st.fragments),
      static_cast<long long>(st.cells_processed),
      st.bytes_transferred / (1024.0 * 1024.0));
}

// --- machine-readable results (--json=<file>) -------------------------------

/// One benchmark measurement destined for the BENCH_*.json trajectory.
struct BenchRecord {
  std::string name;        ///< stable key, e.g. "selection_taxi"
  int64_t samples = 0;     ///< measurements behind the percentiles
  double p50 = 0, p95 = 0, p99 = 0;  ///< latency percentiles, seconds
  double mean = 0;         ///< mean latency, seconds
  double throughput = 0;   ///< operations per second (0 = not applicable)
  int64_t fragments = 0;   ///< pipeline fragments produced (0 = n/a)
};

inline std::vector<BenchRecord>& Records() {
  static std::vector<BenchRecord> records;
  return records;
}

inline std::string& JsonOutPath() {
  static std::string path;
  return path;
}

/// Parse benchmark argv: `--json=<file>` arms the JSON reporter. Unknown
/// arguments are ignored so wrappers can pass through freely.
inline void ParseArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) JsonOutPath() = argv[i] + 7;
  }
}

/// Nearest-rank percentile over raw samples (`p` in [0,1]).
inline double PercentileOf(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<size_t>(std::ceil(p * samples.size()));
  return samples[rank == 0 ? 0 : rank - 1];
}

/// Build a record from raw per-query latencies.
inline BenchRecord MakeRecord(const std::string& name,
                              const std::vector<double>& latencies,
                              double total_seconds, int64_t fragments) {
  BenchRecord rec;
  rec.name = name;
  rec.samples = static_cast<int64_t>(latencies.size());
  rec.p50 = PercentileOf(latencies, 0.50);
  rec.p95 = PercentileOf(latencies, 0.95);
  rec.p99 = PercentileOf(latencies, 0.99);
  double sum = 0;
  for (double v : latencies) sum += v;
  rec.mean = latencies.empty() ? 0 : sum / latencies.size();
  rec.throughput = total_seconds > 0 ? latencies.size() / total_seconds : 0;
  rec.fragments = fragments;
  return rec;
}

/// Write every accumulated record as JSON when --json=<file> was given.
/// Call once at the end of main().
inline void WriteJsonIfRequested() {
  if (JsonOutPath().empty()) return;
  std::FILE* f = std::fopen(JsonOutPath().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", JsonOutPath().c_str());
    return;
  }
  std::fprintf(f, "{\n  \"scale\": %g,\n  \"benchmarks\": [\n", Scale());
  const auto& records = Records();
  for (size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"samples\": %lld, \"p50_s\": %.6f, "
                 "\"p95_s\": %.6f, \"p99_s\": %.6f, \"mean_s\": %.6f, "
                 "\"throughput_per_s\": %.3f, \"fragments\": %lld}%s\n",
                 r.name.c_str(), static_cast<long long>(r.samples), r.p50,
                 r.p95, r.p99, r.mean, r.throughput,
                 static_cast<long long>(r.fragments),
                 i + 1 < records.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %zu benchmark records to %s\n", records.size(),
              JsonOutPath().c_str());
}

}  // namespace spade::bench
