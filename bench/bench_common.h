// Shared infrastructure for the paper-reproduction benchmarks: dataset
// construction at a configurable scale, wall-clock measurement, and
// paper-style table printing. Every binary regenerates one table or figure
// of Section 6; EXPERIMENTS.md records the expected shapes.
//
// Scale: datasets default to a laptop-friendly fraction of the paper's
// (billions of points do not fit this sandbox); set SPADE_BENCH_SCALE to
// grow or shrink everything proportionally (1.0 = defaults).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "engine/spade.h"
#include "storage/dataset.h"

namespace spade::bench {

inline double Scale() {
  const char* s = std::getenv("SPADE_BENCH_SCALE");
  return s != nullptr ? std::atof(s) : 1.0;
}

inline size_t Scaled(size_t n) {
  return static_cast<size_t>(n * Scale()) + 1;
}

/// Engine configuration used across benchmarks: a 256 MB simulated device
/// and a 1024px canvas, the commodity-laptop profile of Section 6.1.
inline SpadeConfig BenchConfig() {
  SpadeConfig cfg;
  cfg.device_memory_budget = 256ull << 20;
  cfg.canvas_resolution = 1024;
  return cfg;
}

/// Time a callable, returning seconds.
template <typename F>
double TimeIt(F&& fn) {
  Stopwatch sw;
  fn();
  return sw.ElapsedSeconds();
}

// --- table printing ---------------------------------------------------------

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%-*s", widths[i], cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtCount(uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

/// Print a SPADE time breakdown line (the Fig. 5 bottom row).
inline void PrintBreakdown(const QueryStats& st) {
  std::printf(
      "    breakdown: io=%.3fs gpu=%.3fs polygon=%.3fs cpu=%.3fs | "
      "passes=%lld fragments=%lld cells=%lld transferred=%.1fMB\n",
      st.io_seconds, st.gpu_seconds, st.polygon_seconds, st.cpu_seconds,
      static_cast<long long>(st.render_passes),
      static_cast<long long>(st.fragments),
      static_cast<long long>(st.cells_processed),
      st.bytes_transferred / (1024.0 * 1024.0));
}

}  // namespace spade::bench
