// Fig. 8 — kNN selection: average time of a batch of kNN queries over
// taxi-like points for varying k. Systems: SPADE (circle-probing plan),
// GeoSpark-like cluster, S2-like library (whose point index is optimized
// for exactly this query class and should win, as in the paper).
#include <random>

#include "baselines/cluster.h"
#include "baselines/s2like.h"
#include "bench_common.h"
#include "datagen/realdata.h"
#include "geom/projection.h"

int main() {
  using namespace spade;
  const size_t n = bench::Scaled(500000);
  const size_t queries = std::max<size_t>(2, bench::Scaled(20));

  SpadeEngine engine(bench::BenchConfig());
  const SpatialDataset taxi = TaxiLikePoints(n, 51);
  auto src = MakeInMemorySource("taxi", taxi, engine.config());
  (void)engine.WarmIndexes(*src, false);

  SpatialDataset taxi_m;
  taxi_m.name = "taxi_m";
  std::vector<Vec2> merc;
  merc.reserve(n);
  for (const auto& g : taxi.geoms) {
    const Vec2 m = LonLatToWebMercator(g.point());
    taxi_m.geoms.emplace_back(m);
    merc.push_back(m);
  }
  const S2LikePointIndex s2(merc);
  ClusterConfig ccfg;
  const ClusterDataset cdata(&taxi_m, ccfg);
  const ClusterEngine cluster(ccfg);

  std::mt19937_64 gen(99);
  const Box ext = NycExtent();
  std::vector<Vec2> probes(queries);
  for (auto& p : probes) {
    p = {ext.min.x + (ext.Width() * (gen() % 1000)) / 1000.0,
         ext.min.y + (ext.Height() * (gen() % 1000)) / 1000.0};
  }

  bench::PrintHeader("Fig 8: kNN selection, avg seconds per query (" +
                     std::to_string(queries) + " queries, " +
                     std::to_string(n) + " taxi-like points)");
  bench::PrintRow({"k", "SPADE", "GeoSpark", "S2"}, {8, 12, 12, 12});

  QueryOptions opts;
  opts.mercator = true;
  for (const size_t k : {1u, 10u, 20u, 30u, 40u, 50u}) {
    const double spade_s = bench::TimeIt([&] {
      for (const auto& p : probes) (void)engine.KnnSelection(*src, p, k, opts);
    });
    const double cluster_s = bench::TimeIt([&] {
      for (const auto& p : probes) {
        cluster.KnnSelect(cdata, LonLatToWebMercator(p), k);
      }
    });
    const double s2_s = bench::TimeIt([&] {
      for (const auto& p : probes) s2.KNearest(LonLatToWebMercator(p), k);
    });
    bench::PrintRow({std::to_string(k), bench::Fmt(spade_s / queries, 4),
                     bench::Fmt(cluster_s / queries, 4),
                     bench::Fmt(s2_s / queries, 6)},
                    {8, 12, 12, 12});
  }
  return 0;
}
