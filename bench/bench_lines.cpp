// Section 6.1's claim: "the performance of queries over polygonal data
// sets can be used as a worst case upper bound for (poly)line data sets —
// drawing lines and performing line-intersection tests is cheaper than
// drawing polygons and performing triangle-intersection tests." This bench
// validates the claim: selections and joins over polyline datasets vs
// polygon datasets with the same vertex count.
#include <random>

#include "bench_common.h"
#include "datagen/spider.h"
#include "test_polygon.h"

namespace spade {
namespace {

/// Random polylines with `verts` vertices each (same vertex budget as the
/// box polygons they are compared against).
SpatialDataset RandomLines(size_t n, int verts, uint64_t seed) {
  SpatialDataset ds;
  ds.name = "lines_" + std::to_string(n);
  ds.geoms.reserve(n);
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::uniform_real_distribution<double> step(-0.01, 0.01);
  for (size_t i = 0; i < n; ++i) {
    LineString l;
    Vec2 p{u(gen), u(gen)};
    l.points.push_back(p);
    for (int v = 1; v < verts; ++v) {
      p.x = std::clamp(p.x + step(gen), 0.0, 1.0);
      p.y = std::clamp(p.y + step(gen), 0.0, 1.0);
      l.points.push_back(p);
    }
    ds.geoms.emplace_back(std::move(l));
  }
  return ds;
}

}  // namespace
}  // namespace spade

int main() {
  using namespace spade;
  const size_t n = bench::Scaled(100000);

  SpadeEngine engine(bench::BenchConfig());
  // Boxes have 4 vertices; lines get 4 vertices too.
  const SpatialDataset lines = RandomLines(n, 4, 71);
  const SpatialDataset boxes = GenerateUniformBoxes(n, 72, 0.02);
  auto lsrc = MakeInMemorySource("lines", lines, engine.config());
  auto bsrc = MakeInMemorySource("boxes", boxes, engine.config());
  (void)engine.WarmIndexes(*lsrc, false);
  (void)engine.WarmIndexes(*bsrc, false);

  bench::PrintHeader(
      "Section 6.1 claim: line queries bounded by polygon queries (n = " +
      std::to_string(n) + ", equal vertex budgets)");
  bench::PrintRow({"extent", "lines_s", "boxes_s", "ratio"}, {10, 12, 12, 10});
  for (const double extent : {0.1, 0.3, 0.5}) {
    const MultiPolygon poly = bench::QueryStar(extent);
    const double ls =
        bench::TimeIt([&] { (void)engine.SpatialSelection(*lsrc, poly); });
    const double bs =
        bench::TimeIt([&] { (void)engine.SpatialSelection(*bsrc, poly); });
    bench::PrintRow({bench::Fmt(extent, 1), bench::Fmt(ls), bench::Fmt(bs),
                     bench::Fmt(ls / bs, 2)},
                    {10, 12, 12, 10});
  }

  bench::PrintHeader("joins against 2500 parcels");
  bench::PrintRow({"data", "time_s"}, {10, 12});
  const SpatialDataset parcels = GenerateParcels(2500, 73);
  auto csrc = MakeInMemorySource("parcels", parcels, engine.config());
  (void)engine.WarmIndexes(*csrc, true);
  const double lj =
      bench::TimeIt([&] { (void)engine.SpatialJoin(*csrc, *lsrc); });
  const double bj =
      bench::TimeIt([&] { (void)engine.SpatialJoin(*csrc, *bsrc); });
  bench::PrintRow({"lines", bench::Fmt(lj)}, {10, 12});
  bench::PrintRow({"boxes", bench::Fmt(bj)}, {10, 12});
  return 0;
}
