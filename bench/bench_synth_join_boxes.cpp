// Fig. 13 — synthetic polygon-polygon joins (uniform vs gaussian boxes,
// parcel constraints):
//   (left)  vary the number of parcels with a fixed box dataset
//   (right) vary the box-set size with 5000 parcels
#include "bench_common.h"
#include "datagen/spider.h"

namespace spade {
namespace {

double JoinTime(SpadeEngine* engine, const SpatialDataset& parcels,
                const SpatialDataset& boxes) {
  auto csrc = MakeInMemorySource("parcels", parcels, engine->config());
  auto bsrc = MakeInMemorySource("boxes", boxes, engine->config());
  (void)engine->WarmIndexes(*csrc, true);
  (void)engine->WarmIndexes(*bsrc, false);
  return bench::TimeIt([&] { (void)engine->SpatialJoin(*csrc, *bsrc); });
}

}  // namespace
}  // namespace spade

int main() {
  using namespace spade;
  SpadeEngine engine(bench::BenchConfig());
  const size_t base_n = bench::Scaled(100000);

  bench::PrintHeader(
      "Fig 13(left): box-polygon join, varying parcels (boxes = " +
      std::to_string(base_n) + ")");
  bench::PrintRow({"parcels", "uniform_s", "gauss_s"}, {10, 12, 12});
  {
    const SpatialDataset uni = GenerateUniformBoxes(base_n, 15);
    const SpatialDataset gau = GenerateGaussianBoxes(base_n, 16);
    for (const size_t parcels : {1000u, 2500u, 5000u, 7500u, 10000u}) {
      const SpatialDataset par = GenerateParcels(parcels, 17);
      const double us = JoinTime(&engine, par, uni);
      const double gs = JoinTime(&engine, par, gau);
      bench::PrintRow(
          {std::to_string(parcels), bench::Fmt(us), bench::Fmt(gs)},
          {10, 12, 12});
    }
  }

  bench::PrintHeader(
      "Fig 13(right): box-polygon join, varying boxes (5000 parcels)");
  bench::PrintRow({"boxes", "uniform_s", "gauss_s"}, {10, 12, 12});
  const SpatialDataset par = GenerateParcels(5000, 18);
  for (const size_t n : {bench::Scaled(50000), bench::Scaled(100000),
                         bench::Scaled(150000), bench::Scaled(200000),
                         bench::Scaled(250000)}) {
    const SpatialDataset uni = GenerateUniformBoxes(n, 19);
    const SpatialDataset gau = GenerateGaussianBoxes(n, 20);
    const double us = JoinTime(&engine, par, uni);
    const double gs = JoinTime(&engine, par, gau);
    bench::PrintRow({std::to_string(n), bench::Fmt(us), bench::Fmt(gs)},
                    {10, 12, 12});
  }
  return 0;
}
