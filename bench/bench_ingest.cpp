// Streaming-ingest benchmark: what does a live append stream cost the
// read path? Phase 1 freezes a dataset inside an IngestSource and
// measures snapshot-pinned range-query latency with no writers (the
// baseline). Phase 2 runs the same query mix while a writer thread
// appends batches at a fixed rate — every query pins a fresh epoch, so
// each one pays for delta tails, version-keyed cache misses on the cells
// the stream touches, and whatever merges trip mid-flight. The headline
// number is the p95 ratio live/frozen; append latency itself is reported
// alongside.
//
//   ./build/bench/bench_ingest [--json=BENCH_ingest.json]
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "bench_common.h"
#include "common/rng.h"
#include "ingest/ingest.h"

namespace {

using namespace spade;
using namespace spade::bench;

constexpr int kZoom = 4;
const Box kExtent(0, 0, 1024, 1024);

std::vector<Vec2> RandomBatch(PortableRng& rng, size_t n) {
  std::vector<Vec2> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(Vec2{rng.Uniform(0, 1024), rng.Uniform(0, 1024)});
  }
  return pts;
}

/// Run `queries` snapshot-pinned range selections, returning latencies.
std::vector<double> QueryPhase(SpadeEngine& engine, ingest::IngestSource& src,
                               size_t queries, uint64_t seed,
                               double* total_seconds) {
  PortableRng rng(seed);
  std::vector<double> lat;
  lat.reserve(queries);
  Stopwatch phase;
  for (size_t q = 0; q < queries; ++q) {
    const double cx = rng.Uniform(64, 960), cy = rng.Uniform(64, 960);
    const double half = rng.Uniform(16, 96);
    const Box box(cx - half, cy - half, cx + half, cy + half);
    auto snap = src.PinSnapshot();
    Stopwatch sw;
    auto r = engine.RangeSelection(*snap, box);
    lat.push_back(sw.ElapsedSeconds());
    if (!r.ok()) {
      std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
  }
  *total_seconds = phase.ElapsedSeconds();
  return lat;
}

}  // namespace

int main(int argc, char** argv) {
  ParseArgs(argc, argv);
  PrintHeader("Streaming ingest: query latency, frozen vs under live appends");

  const size_t kRows = Scaled(50000);
  const size_t kBatch = 50;
  const size_t kQueries = Scaled(200);
  const auto kAppendPeriod = std::chrono::milliseconds(10);  // ~5k rows/s

  const std::string merge_dir =
      (std::filesystem::temp_directory_path() / "spade_bench_ingest").string();
  std::filesystem::remove_all(merge_dir);

  ingest::IngestOptions opts;
  opts.extent = kExtent;
  opts.zoom = kZoom;
  // Low enough that the fill and the live phase both trip real merges
  // (~195 rows land per cell during the fill at the default scale).
  opts.merge_threshold = 192;
  opts.merge_dir = merge_dir;
  auto made = ingest::MakeIngestSource("stream", opts);
  if (!made.ok()) {
    std::fprintf(stderr, "%s\n", made.status().ToString().c_str());
    return 1;
  }
  auto src = made.value();
  SpadeEngine engine(BenchConfig());

  // Fill via the real append path, timing each batch (cold appends).
  PortableRng fill_rng(42);
  std::vector<double> append_lat;
  Stopwatch fill_sw;
  for (size_t appended = 0; appended < kRows; appended += kBatch) {
    auto batch = RandomBatch(fill_rng, kBatch);
    Stopwatch sw;
    auto r = src->Append(batch);
    append_lat.push_back(sw.ElapsedSeconds());
    if (!r.ok()) {
      std::fprintf(stderr, "append failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  const double fill_seconds = fill_sw.ElapsedSeconds();
  const auto fill_stats = src->GetStats();
  std::printf("filled %zu rows in %zu-row batches: %.2fs (%.0f rows/s), "
              "%llu merges\n",
              src->num_objects(), kBatch, fill_seconds,
              src->num_objects() / fill_seconds,
              static_cast<unsigned long long>(fill_stats.merges));
  Records().push_back(
      MakeRecord("ingest_append", append_lat, fill_seconds, 0));

  // Phase 1: frozen. Merge everything first so the baseline reads block
  // files like a long-settled dataset.
  if (auto st = src->ForceMerge(); !st.ok()) {
    std::fprintf(stderr, "merge failed: %s\n", st.ToString().c_str());
    return 1;
  }
  double frozen_total = 0;
  auto frozen = QueryPhase(engine, *src, kQueries, 7, &frozen_total);
  Records().push_back(
      MakeRecord("ingest_query_frozen", frozen, frozen_total, 0));

  // Phase 2: the same query mix with a writer appending at a fixed rate.
  std::atomic<bool> stop{false};
  std::atomic<size_t> live_rows{0};
  std::thread writer([&] {
    PortableRng rng(43);
    auto next = std::chrono::steady_clock::now();
    while (!stop.load(std::memory_order_relaxed)) {
      auto batch = RandomBatch(rng, kBatch);
      if (src->Append(batch).ok()) {
        live_rows.fetch_add(batch.size(), std::memory_order_relaxed);
      }
      next += kAppendPeriod;
      std::this_thread::sleep_until(next);
    }
  });
  double live_total = 0;
  auto live = QueryPhase(engine, *src, kQueries, 7, &live_total);
  stop.store(true);
  writer.join();
  Records().push_back(MakeRecord("ingest_query_live", live, live_total, 0));

  const double append_rate = live_total > 0 ? live_rows.load() / live_total : 0;
  PrintRow({"phase", "queries", "p50 ms", "p95 ms", "p99 ms", "mean ms"},
           {24, 10, 10, 10, 10, 10});
  auto row = [&](const char* name, const std::vector<double>& lat,
                 double total) {
    const BenchRecord r = MakeRecord(name, lat, total, 0);
    PrintRow({name, FmtCount(lat.size()), Fmt(r.p50 * 1e3), Fmt(r.p95 * 1e3),
              Fmt(r.p99 * 1e3), Fmt(r.mean * 1e3)},
             {24, 10, 10, 10, 10, 10});
    return r;
  };
  const BenchRecord rf = row("frozen", frozen, frozen_total);
  const BenchRecord rl = row("under appends", live, live_total);
  const double ratio = rf.p95 > 0 ? rl.p95 / rf.p95 : 0;
  std::printf(
      "\nappend rate during live phase: %.0f rows/s (%zu rows landed)\n"
      "p95 degradation under appends: %.2fx (acceptance bound: 2x)\n",
      append_rate, live_rows.load(), ratio);

  WriteJsonIfRequested();
  std::filesystem::remove_all(merge_dir);
  return 0;
}
