// Fig. 11 — synthetic box (polygon) selections, uniform vs gaussian:
//   (left)  vary the query polygon extent 0.1 .. 0.5
//   (right) vary the input size with extent fixed at 0.3
#include "bench_common.h"
#include "datagen/spider.h"
#include "test_polygon.h"

int main() {
  using namespace spade;
  SpadeEngine engine(bench::BenchConfig());
  const size_t base_n = bench::Scaled(100000);

  bench::PrintHeader(
      "Fig 11(left): box selection, varying polygon extent (n = " +
      std::to_string(base_n) + ")");
  bench::PrintRow({"extent", "uniform_s", "gauss_s"}, {10, 12, 12});
  {
    const SpatialDataset uni = GenerateUniformBoxes(base_n, 5);
    const SpatialDataset gau = GenerateGaussianBoxes(base_n, 6);
    auto usrc = MakeInMemorySource("u", uni, engine.config());
    auto gsrc = MakeInMemorySource("g", gau, engine.config());
    (void)engine.WarmIndexes(*usrc, false);
    (void)engine.WarmIndexes(*gsrc, false);
    for (const double extent : {0.1, 0.2, 0.3, 0.4, 0.5}) {
      const MultiPolygon poly = bench::QueryStar(extent);
      const double us =
          bench::TimeIt([&] { (void)engine.SpatialSelection(*usrc, poly); });
      const double gs =
          bench::TimeIt([&] { (void)engine.SpatialSelection(*gsrc, poly); });
      bench::PrintRow({bench::Fmt(extent, 1), bench::Fmt(us), bench::Fmt(gs)},
                      {10, 12, 12});
    }
  }

  bench::PrintHeader(
      "Fig 11(right): box selection, varying input size (extent = 0.3)");
  bench::PrintRow({"boxes", "uniform_s", "gauss_s"}, {10, 12, 12});
  const MultiPolygon poly = bench::QueryStar(0.3);
  for (const size_t n : {bench::Scaled(50000), bench::Scaled(100000),
                         bench::Scaled(150000), bench::Scaled(200000),
                         bench::Scaled(250000)}) {
    const SpatialDataset uni = GenerateUniformBoxes(n, 7);
    const SpatialDataset gau = GenerateGaussianBoxes(n, 8);
    auto usrc = MakeInMemorySource("u", uni, engine.config());
    auto gsrc = MakeInMemorySource("g", gau, engine.config());
    (void)engine.WarmIndexes(*usrc, false);
    (void)engine.WarmIndexes(*gsrc, false);
    const double us =
        bench::TimeIt([&] { (void)engine.SpatialSelection(*usrc, poly); });
    const double gs =
        bench::TimeIt([&] { (void)engine.SpatialSelection(*gsrc, poly); });
    bench::PrintRow({std::to_string(n), bench::Fmt(us), bench::Fmt(gs)},
                    {10, 12, 12});
  }
  return 0;
}
