// Urban analytics scenario (the paper's motivating workload): taxi-pickup
// analysis over NYC-like data.
//   * aggregate pickups per neighborhood and rank the hotspots,
//   * select the pickups inside the busiest neighborhood,
//   * run a meter-accurate distance query around a "subway station",
//   * find the k nearest pickups to a point of interest.
//
//   $ ./build/examples/taxi_hotspots [num_points]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "datagen/realdata.h"
#include "engine/spade.h"

using namespace spade;

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500000;

  SpadeEngine engine;
  std::printf("generating %zu taxi-like pickups over NYC...\n", n);
  SpatialDataset taxi = TaxiLikePoints(n, /*seed=*/2026);
  SpatialDataset hoods = NeighborhoodLikePolygons(/*seed=*/7);
  auto taxi_src = MakeInMemorySource("taxi", taxi, engine.config());
  auto hood_src = MakeInMemorySource("hoods", hoods, engine.config());

  // 1. Pickups per neighborhood (spatial aggregation, point-optimized plan).
  auto agg = engine.SpatialAggregation(*taxi_src, *hood_src);
  if (!agg.ok()) {
    std::printf("aggregation failed: %s\n", agg.status().ToString().c_str());
    return 1;
  }
  std::vector<std::pair<uint64_t, GeomId>> ranked;
  for (size_t i = 0; i < agg.value().counts.size(); ++i) {
    ranked.emplace_back(agg.value().counts[i], static_cast<GeomId>(i));
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("top-5 hotspot neighborhoods (%.2f s):\n",
              agg.value().stats.TotalSeconds());
  for (int i = 0; i < 5; ++i) {
    std::printf("  neighborhood %3u: %8llu pickups\n", ranked[i].second,
                static_cast<unsigned long long>(ranked[i].first));
  }

  // 2. All pickups inside the busiest neighborhood.
  const MultiPolygon& busiest = hoods.geoms[ranked[0].second].polygon();
  auto sel = engine.SpatialSelection(*taxi_src, busiest);
  if (sel.ok()) {
    std::printf("selection inside hotspot: %zu pickups (%.2f s; io %.2fs, "
                "gpu %.2fs)\n",
                sel.value().ids.size(), sel.value().stats.TotalSeconds(),
                sel.value().stats.io_seconds, sel.value().stats.gpu_seconds);
  }

  // 3. Meter-accurate distance query: pickups within 250 m of a station.
  QueryOptions meters;
  meters.mercator = true;
  const Vec2 station = taxi.geoms[0].point();  // a busy spot
  auto near = engine.DistanceSelection(*taxi_src, Geometry(station), 250.0,
                                       meters);
  if (near.ok()) {
    std::printf("pickups within 250 m of (%.4f, %.4f): %zu\n", station.x,
                station.y, near.value().ids.size());
  }

  // 4. The 10 nearest pickups to the station.
  auto knn = engine.KnnSelection(*taxi_src, station, 10, meters);
  if (knn.ok() && !knn.value().neighbors.empty()) {
    std::printf("10 nearest pickups: closest at %.1f m, furthest at %.1f m\n",
                knn.value().neighbors.front().second,
                knn.value().neighbors.back().second);
  }
  return 0;
}
