// Quickstart: build a small spatial dataset, register it with the engine,
// and run one of each query type.
//
//   $ ./build/examples/quickstart
#include <cstdio>

#include "datagen/spider.h"
#include "engine/spade.h"
#include "geom/wkt.h"

using namespace spade;

int main() {
  // 1. An engine with default (commodity-laptop) configuration.
  SpadeEngine engine;

  // 2. A dataset: 100K random points on the unit square, grid-indexed.
  SpatialDataset points = GenerateUniformPoints(100000, /*seed=*/7);
  auto src = MakeInMemorySource("points", points, engine.config());
  std::printf("dataset: %zu points, %zu grid cells\n", points.size(),
              src->index().num_cells());

  // 3. Spatial selection with a polygonal constraint (WKT input).
  auto constraint = ParseWkt(
      "POLYGON ((0.2 0.2, 0.8 0.25, 0.7 0.8, 0.4 0.9, 0.15 0.6, 0.2 0.2))");
  if (!constraint.ok()) {
    std::printf("WKT error: %s\n", constraint.status().ToString().c_str());
    return 1;
  }
  auto sel = engine.SpatialSelection(*src, constraint.value().polygon());
  if (!sel.ok()) {
    std::printf("selection failed: %s\n", sel.status().ToString().c_str());
    return 1;
  }
  std::printf("selection: %zu points intersect the constraint "
              "(%.1f ms, %lld rendering passes)\n",
              sel.value().ids.size(), sel.value().stats.TotalSeconds() * 1e3,
              static_cast<long long>(sel.value().stats.render_passes));

  // 4. Distance selection: everything within 0.05 of a probe point.
  auto near = engine.DistanceSelection(*src, Geometry(Vec2{0.5, 0.5}), 0.05);
  std::printf("distance:  %zu points within 0.05 of (0.5, 0.5)\n",
              near.ok() ? near.value().ids.size() : 0);

  // 5. k nearest neighbours.
  auto knn = engine.KnnSelection(*src, {0.5, 0.5}, 5);
  if (knn.ok()) {
    std::printf("knn:       5 nearest to (0.5, 0.5):\n");
    for (const auto& [id, dist] : knn.value().neighbors) {
      std::printf("           id=%u dist=%.5f\n", id, dist);
    }
  }

  // 6. A join against parcel polygons, plus the per-parcel aggregation.
  SpatialDataset parcels = GenerateParcels(16, /*seed=*/9);
  auto parcel_src = MakeInMemorySource("parcels", parcels, engine.config());
  auto join = engine.SpatialJoin(*parcel_src, *src);
  std::printf("join:      %zu (parcel, point) pairs\n",
              join.ok() ? join.value().pairs.size() : 0);
  auto agg = engine.SpatialAggregation(*src, *parcel_src);
  if (agg.ok()) {
    uint64_t best = 0, best_id = 0;
    for (size_t i = 0; i < agg.value().counts.size(); ++i) {
      if (agg.value().counts[i] > best) {
        best = agg.value().counts[i];
        best_id = i;
      }
    }
    std::printf("aggregate: densest parcel is #%llu with %llu points\n",
                static_cast<unsigned long long>(best_id),
                static_cast<unsigned long long>(best));
  }
  return 0;
}
