// Polygon-polygon analytics: join zipcode-like regions with county-like
// regions over the US extent (which zipcodes cross county borders?) and
// inspect the optimizer's behaviour and the query-time breakdown.
//
//   $ ./build/examples/region_stats
#include <cstdio>
#include <map>

#include "datagen/realdata.h"
#include "engine/spade.h"

using namespace spade;

int main() {
  SpadeEngine engine;
  SpatialDataset counties = CountyLikePolygons(/*seed=*/3, 20, 20);
  SpatialDataset zips = ZipcodeLikePolygons(/*seed=*/4, 56, 56);
  std::printf("counties: %zu polygons, zipcodes: %zu polygons\n",
              counties.size(), zips.size());

  auto county_src = MakeInMemorySource("counties", counties, engine.config());
  auto zip_src = MakeInMemorySource("zips", zips, engine.config());

  // Pre-build canvas indexes so the join timing excludes index build, as
  // in the paper's setup.
  (void)engine.WarmIndexes(*county_src, /*need_layers=*/true);
  (void)engine.WarmIndexes(*zip_src, /*need_layers=*/false);

  auto join = engine.SpatialJoin(*county_src, *zip_src);
  if (!join.ok()) {
    std::printf("join failed: %s\n", join.status().ToString().c_str());
    return 1;
  }
  const auto& pairs = join.value().pairs;
  std::printf("join result: %zu (county, zipcode) pairs\n", pairs.size());

  const QueryStats& st = join.value().stats;
  std::printf("breakdown: total %.2fs = io %.2fs + gpu %.2fs + polygon %.2fs "
              "+ cpu %.2fs\n",
              st.TotalSeconds(), st.io_seconds, st.gpu_seconds,
              st.polygon_seconds, st.cpu_seconds);
  std::printf("           %lld rendering passes, %lld fragments, %lld exact "
              "boundary tests, %.1f MB transferred\n",
              static_cast<long long>(st.render_passes),
              static_cast<long long>(st.fragments),
              static_cast<long long>(st.exact_tests),
              st.bytes_transferred / 1048576.0);

  // Zipcodes spanning the most counties (border-straddling regions).
  std::map<GeomId, int> counties_per_zip;
  for (const auto& [county, zip] : pairs) counties_per_zip[zip]++;
  int max_span = 0;
  size_t multi = 0;
  for (const auto& [zip, cnt] : counties_per_zip) {
    max_span = std::max(max_span, cnt);
    multi += cnt > 1;
  }
  std::printf("zipcodes touching >1 county: %zu (max counties spanned by one "
              "zipcode: %d)\n",
              multi, max_span);
  return 0;
}
