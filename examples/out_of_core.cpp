// Out-of-core execution: store a dataset as on-disk grid-cell blocks,
// constrain the simulated device memory so queries must stream cells, and
// show the SQL-facing side of the engine (datasets and results registered
// in the relational catalog).
//
//   $ ./build/examples/out_of_core [num_points]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "datagen/realdata.h"
#include "engine/spade.h"
#include "geom/wkt.h"
#include "storage/sql.h"

using namespace spade;

int main(int argc, char** argv) {
  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1000000;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "spade_out_of_core").string();
  std::filesystem::remove_all(dir);

  // A deliberately tiny device: 8 MB of "GPU memory" means 2 MB cells, so
  // the dataset below (~24 MB of coordinates) cannot fit at once.
  SpadeConfig cfg;
  cfg.device_memory_budget = 8ull << 20;
  SpadeEngine engine(cfg);

  std::printf("writing %zu tweet-like points to disk blocks at %s...\n", n,
              dir.c_str());
  SpatialDataset tweets = TweetLikePoints(n, /*seed=*/5);
  auto disk = DiskSource::Create(dir, tweets, cfg.EffectiveCellBytes(),
                                 /*cache_bytes=*/4ull << 20);
  if (!disk.ok()) {
    std::printf("create failed: %s\n", disk.status().ToString().c_str());
    return 1;
  }
  std::printf("grid index: zoom %d, %zu non-empty cells (each <= %zu KB)\n",
              disk.value()->index().zoom, disk.value()->index().num_cells(),
              cfg.EffectiveCellBytes() >> 10);

  // A selection over a county-sized polygon streams only qualifying cells.
  SpatialDataset counties = CountyLikePolygons(6, 16, 16);
  const MultiPolygon& constraint = counties.geoms[120].polygon();
  auto sel = engine.SpatialSelection(*disk.value(), constraint);
  if (!sel.ok()) {
    std::printf("selection failed: %s\n", sel.status().ToString().c_str());
    return 1;
  }
  const QueryStats& st = sel.value().stats;
  std::printf("selection: %zu points in %.2fs — %lld/%zu cells touched, "
              "%.1f MB transferred, io %.2fs\n",
              sel.value().ids.size(), st.TotalSeconds(),
              static_cast<long long>(st.cells_processed),
              disk.value()->index().num_cells(),
              st.bytes_transferred / 1048576.0, st.io_seconds);

  // Relational integration: query metadata and results through SQL.
  Catalog& cat = engine.catalog();
  (void)ExecuteSql(&cat, "CREATE TABLE datasets (name TEXT, objects INT)");
  (void)ExecuteSql(&cat, "INSERT INTO datasets VALUES ('tweets', " +
                             std::to_string(n) + ")");
  (void)ExecuteSql(&cat, "CREATE TABLE results (id INT)");
  auto* results = cat.GetTable("results").value();
  for (size_t i = 0; i < std::min<size_t>(sel.value().ids.size(), 1000); ++i) {
    (void)results->AppendRow({static_cast<int64_t>(sel.value().ids[i])});
  }
  auto count = ExecuteSql(&cat, "SELECT COUNT(*) FROM results WHERE id >= 0");
  if (count.ok()) {
    std::printf("SQL: stored %s result rows in the relational catalog\n",
                ValueToString(count.value().Get(0, 0)).c_str());
  }

  std::filesystem::remove_all(dir);
  return 0;
}
