// Canvas visualization: renders discrete canvases (the engine's internal
// representation) to PPM images and ASCII art — the polygon canvas of an
// NYC-like neighborhood, a layered canvas, and a distance canvas around a
// polyline ("rounded rectangle" expansion of Section 4.2).
//
//   $ ./build/examples/canvas_viz [output_dir]
#include <cstdio>
#include <string>

#include "canvas/canvas_builder.h"
#include "canvas/canvas_debug.h"
#include "datagen/realdata.h"
#include "engine/spade.h"

using namespace spade;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp";
  GfxDevice device;

  // 1. A neighborhood polygon canvas: interior + boundary pixels.
  SpatialDataset hoods = NeighborhoodLikePolygons(7, 8, 8);
  const MultiPolygon& hood = hoods.geoms[27].polygon();
  {
    const Box b = hood.Bounds().Expanded(hood.Bounds().Width() * 0.05);
    const Viewport vp(b, 256, 256);
    const Triangulation tri = Triangulate(hood);
    CanvasBuilder builder(&device, vp);
    const Canvas canvas = builder.BuildPolygonCanvas({0}, {&hood}, {&tri});
    const std::string path = dir + "/canvas_neighborhood.ppm";
    if (WriteCanvasPpm(canvas, path).ok()) {
      std::printf("wrote %s\n", path.c_str());
    }
    std::printf("\nneighborhood canvas (ascii, B=boundary #=interior):\n%s\n",
                CanvasToAscii(canvas, 40).c_str());
  }

  // 2. A full layer of the neighborhood tiling in one canvas.
  {
    std::vector<GeomId> ids;
    std::vector<const MultiPolygon*> polys;
    std::vector<Triangulation> tris(hoods.size());
    std::vector<const Triangulation*> tptrs;
    std::vector<Box> boxes;
    for (size_t i = 0; i < hoods.size(); ++i) {
      boxes.push_back(hoods.geoms[i].Bounds());
    }
    // Grab a non-intersecting subset (every other column+row tile).
    for (size_t i = 0; i < hoods.size(); ++i) {
      const size_t gx = i % 8, gy = i / 8;
      if (gx % 2 == 0 && gy % 2 == 0) {
        ids.push_back(static_cast<GeomId>(i));
        polys.push_back(&hoods.geoms[i].polygon());
        tris[i] = Triangulate(hoods.geoms[i].polygon());
        tptrs.push_back(&tris[i]);
      }
    }
    const Viewport vp(NycExtent(), 384, 274);
    CanvasBuilder builder(&device, vp);
    const Canvas canvas = builder.BuildPolygonCanvas(ids, polys, tptrs);
    const std::string path = dir + "/canvas_layer.ppm";
    if (WriteCanvasPpm(canvas, path).ok()) {
      std::printf("wrote %s (%zu polygons in one layer canvas)\n",
                  path.c_str(), ids.size());
    }
  }

  // 3. A distance canvas: capsule expansion around a route-like polyline.
  {
    LineString route;
    const Box ext = NycExtent();
    route.points = {{ext.min.x + 0.1, ext.min.y + 0.1},
                    {ext.Center().x, ext.min.y + 0.25},
                    {ext.Center().x + 0.05, ext.Center().y},
                    {ext.max.x - 0.15, ext.max.y - 0.1}};
    const Geometry g(route);
    const double r = 0.03;  // degrees, for the visualization
    const Viewport vp(ext, 384, 274);
    CanvasBuilder builder(&device, vp);
    const Canvas canvas = builder.BuildDistanceCanvasGeometries({0}, {&g}, {r});
    const std::string path = dir + "/canvas_distance.ppm";
    if (WriteCanvasPpm(canvas, path).ok()) {
      std::printf("wrote %s (distance region around a polyline)\n",
                  path.c_str());
    }
  }

  std::printf("\npipeline totals: %lld passes, %lld fragments\n",
              static_cast<long long>(device.render_passes()),
              static_cast<long long>(device.fragments()));
  return 0;
}
